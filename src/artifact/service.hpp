// Concurrent batch compile server: JSONL schedule requests in, artifact
// responses out (`cgra-tool serve`, DESIGN.md §12).
//
// A driver (design-space explorer, CI harness, another process or machine)
// streams one JSON request per line:
//
//   {"id": 7, "comp": "mesh9", "kernel": "adpcm", "unroll": 2,
//    "maxContexts": 16, "artifact": true}
//
// and receives one versioned JSON response per line, in per-connection
// request order:
//
//   {"v": 1, "id": 7, "ok": true, "key": "3fb2...", "cached": false,
//    "contexts": 14, "fingerprint": "1234...", ...}
//
// Failures are typed: {"v":1, "id":..., "ok":false,
//   "error":{"code":"unmappable", "message":"...", "reason":"context-budget"}}
// with codes parse | unknown_comp | unmappable | overloaded | shutdown |
// internal (the wire protocol table lives in DESIGN.md §12).
//
// The `Service` class owns the whole lifecycle:
//
//   * Listeners — stdin/stream sessions (`serveStream`), unix domain
//     sockets (`addUnixListener`) and loopback TCP (`addTcpListener`) feed
//     one shared admission/worker machinery; a single poll/accept IO thread
//     (`start`) multiplexes every socket connection — it owns both sides of
//     every socket (reads, and POLLOUT-driven non-blocking writes from a
//     bounded per-connection output buffer), so workers never block in
//     send() and never race a close.
//   * Admission control — each connection may have at most `maxInFlight`
//     unanswered requests in its response window, shed ones included
//     (reading from that connection pauses past the cap: per-client
//     fairness by backpressure, one greedy or non-reading client cannot
//     monopolize the worker pool or grow the window without bound), and
//     the service admits at most `queueBound` requests globally (past it
//     requests are answered immediately with
//     `"error":{"code":"overloaded"}` — explicit shedding, never a silent
//     stall).
//   * Workers — cache misses from all sessions run on one shared pool over
//     the shared ArtifactStore; identical in-flight keys coalesce onto one
//     scheduling slot exactly as in the single-stream service.
//   * Observability — a request line {"stats": true} answers with the live
//     ServiceStats (per-connection counters, queue depth, p50/p99 service
//     latency, store hit rate) as sorted-key JSON; {"metrics": true}
//     answers the Prometheus-style text exposition of the service's metric
//     registry (DESIGN.md §13). Every request carries a span breakdown
//     (admission, queue wait, store lookup, schedule, serialize, write)
//     recorded off the hot-path lock and optionally appended as one JSONL
//     access-log line per request; cold scheduling runs can be trace-
//     sampled into per-request Chrome JSON files.
//   * Drain — `notifyDrain()` is async-signal-safe (SIGTERM handlers call
//     it): the service stops accepting, answers every already-read request
//     (in-flight jobs finish; not-yet-started ones answer
//     `"error":{"code":"shutdown"}`), flushes and closes every connection,
//     then `waitDone()` returns.
//
// The PR-4 free functions remain as thin wrappers over the class.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "artifact/store.hpp"
#include "json/json.hpp"

namespace cgra::artifact {

/// Wire protocol version carried as `"v"` in every response.
inline constexpr std::int64_t kWireVersion = 1;

/// Typed failure codes of the v1 wire protocol. Scheduling failures map
/// from the scheduler's FailureReason onto `Unmappable` (the response keeps
/// the fine-grained reason name in `error.reason`).
enum class WireError : std::uint8_t {
  Parse,        ///< malformed JSON or missing/ill-typed request fields
  UnknownComp,  ///< composition/kernel could not be resolved
  Unmappable,   ///< the scheduler reported a typed ScheduleFailure
  Overloaded,   ///< shed: global queue bound exceeded or too many clients
  Shutdown,     ///< shed: the service is draining
  Internal,     ///< unexpected exception escaped the worker (a library bug)
};

const char* wireErrorCode(WireError code);

struct ServiceOptions {
  /// Worker threads for cache misses; 0 selects hardware concurrency.
  unsigned threads = 0;
  /// Per-connection cap on unanswered requests (every request in the
  /// response window, shed ones included; a slot frees once its response
  /// heads to the wire). Reading from a connection pauses — never drops —
  /// past this bound.
  std::size_t maxInFlight = 64;
  /// Global bound on admitted requests across every connection. Past it,
  /// new requests are shed with `"error":{"code":"overloaded"}`.
  std::size_t queueBound = 256;
  /// Maximum concurrent socket connections; extra connections are answered
  /// with one `overloaded` error line and closed. 0 = unlimited.
  std::size_t maxClients = 0;
  /// Stop listening after this many accepted connections (the service then
  /// finishes naturally once they close). 0 = listen until drain.
  std::uint64_t maxConnections = 0;
  /// Attach the full artifact document to every successful response
  /// (per-request `"artifact": true` overrides this default).
  bool includeArtifact = false;
  /// JSONL access log: one line per request (connection, id, key prefix,
  /// outcome, cache hit, span breakdown in µs) appended when the response
  /// leaves the window toward the wire. Empty = disabled.
  std::string accessLogPath;
  /// Chrome-trace sampling of cold scheduling runs: every Nth request that
  /// actually runs the scheduler records a decision trace and writes its
  /// Chrome JSON into `traceDir`. 0 = off.
  std::uint64_t traceSample = 0;
  /// Directory receiving sampled traces (must exist); empty disables the
  /// file output even when sampling is on.
  std::string traceDir;
};

/// Traffic counters for one service, readable live (`Service::stats`) and
/// reported on shutdown.
struct ServiceStats {
  std::uint64_t requests = 0;     ///< request lines read (all connections)
  std::uint64_t parseErrors = 0;  ///< parse/unknown_comp failure responses
  std::uint64_t scheduled = 0;    ///< jobs actually run on the scheduler
  std::uint64_t cacheHits = 0;    ///< answered straight from the store
  std::uint64_t deduped = 0;      ///< waited on an identical in-flight job
  std::uint64_t statsRequests = 0;          ///< {"stats":true} requests
  std::uint64_t shedOverload = 0;           ///< requests shed `overloaded`
  std::uint64_t shedShutdown = 0;           ///< requests shed `shutdown`
  std::uint64_t connectionsAccepted = 0;    ///< sessions opened (any kind)
  std::uint64_t connectionsRefused = 0;     ///< closed at accept (maxClients)
  std::uint64_t connectionsClosed = 0;      ///< sessions fully drained
  std::uint64_t maxQueueDepth = 0;          ///< peak admitted requests
  // Service latency (admission → response ready) of processed compile
  // requests. Control-plane traffic ({"stats":true}, {"metrics":true}) is
  // tracked apart so stats polling cannot skew the CI-gated p50/p99.
  std::uint64_t latencyCount = 0;
  double latencyP50Us = 0.0;
  double latencyP99Us = 0.0;
  double latencyMeanUs = 0.0;
  std::uint64_t controlLatencyCount = 0;
  double controlLatencyP50Us = 0.0;
  double controlLatencyP99Us = 0.0;
  double controlLatencyMeanUs = 0.0;

  json::Value toJson() const;
};

/// The concurrent compile server. Thread-safe with respect to `store`
/// (which other threads/processes may share); one Service may serve socket
/// listeners and blocking stream sessions at the same time.
class Service {
public:
  explicit Service(ArtifactStore& store, ServiceOptions options = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Binds a unix domain socket at `path`. Refuses (cgra::Error) to replace
  /// a non-socket file at `path`; a stale socket from a previous run is
  /// unlinked. Call before start().
  void addUnixListener(const std::string& path);

  /// Binds 127.0.0.1:`port` (0 picks a free port) and returns the bound
  /// port. Call before start().
  std::uint16_t addTcpListener(std::uint16_t port);

  /// Spawns the poll/accept IO thread serving every registered listener.
  void start();

  /// Async-signal-safe drain request (SIGTERM handlers may call this):
  /// stop accepting, answer everything already read, finish in-flight
  /// work, flush and close. Returns immediately.
  void notifyDrain();

  /// notifyDrain() + waitDone().
  void drain();

  /// Blocks until the service has finished: every listener closed and
  /// every socket connection answered and closed (after drain, or after
  /// maxConnections sessions completed). Returns immediately when start()
  /// was never called.
  void waitDone();

  /// drain() + join the IO thread. Idempotent; the destructor calls it.
  void stop();

  /// Serves one blocking JSONL session on the caller's thread through the
  /// same admission control and worker pool. Usable with or without
  /// start(); returns at EOF of `in` once every response has been written.
  void serveStream(std::istream& in, std::ostream& out);

  /// Live counters snapshot (percentiles computed from the histogram).
  ServiceStats stats() const;

  /// The live metrics document answered to {"stats": true} requests:
  /// service counters + queue depth, per-connection counters, store
  /// counters/hit rate. Sorted keys.
  json::Value statsJson() const;

  /// Prometheus text exposition of the service's metrics registry — the
  /// same document answered to {"metrics": true} requests and written by
  /// `cgra-tool serve --metrics` on shutdown (DESIGN.md §13).
  std::string metricsText() const;

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Thin wrapper: serves JSONL requests from `in` until EOF, streaming
/// responses to `out` in request order, on a one-shot Service.
ServiceStats serveJsonl(std::istream& in, std::ostream& out,
                        ArtifactStore& store, const ServiceOptions& options);

/// Thin wrapper: binds a unix domain socket at `path` (refusing to unlink
/// anything that is not a socket) and serves connections concurrently until
/// `maxConnections` sessions were accepted and finished (0 = forever).
/// Throws cgra::Error on socket errors.
ServiceStats serveUnixSocket(const std::string& path, ArtifactStore& store,
                             const ServiceOptions& options,
                             std::uint64_t maxConnections = 0);

}  // namespace cgra::artifact
