#include "artifact/client.hpp"

#include <utility>

#include "support/assert.hpp"

#ifdef __unix__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace cgra::artifact {

JsonlClient::~JsonlClient() { close(); }

JsonlClient::JsonlClient(JsonlClient&& other) noexcept
    : fd_(other.fd_), rbuf_(std::move(other.rbuf_)) {
  other.fd_ = -1;
}

JsonlClient& JsonlClient::operator=(JsonlClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    rbuf_ = std::move(other.rbuf_);
    other.fd_ = -1;
  }
  return *this;
}

#ifdef __unix__

JsonlClient JsonlClient::connectUnix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path))
    throw Error("socket path too long: " + path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw Error("cannot create unix socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  path.copy(addr.sun_path, sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw Error("cannot connect to " + path);
  }
  return JsonlClient(fd);
}

JsonlClient JsonlClient::connectTcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw Error("cannot create TCP socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw Error("cannot connect to 127.0.0.1:" + std::to_string(port));
  }
  return JsonlClient(fd);
}

void JsonlClient::sendLine(const std::string& line) {
  CGRA_ASSERT_MSG(fd_ >= 0, "sendLine on a closed client");
  std::string framed = line;
  if (framed.empty() || framed.back() != '\n') framed.push_back('\n');
  const char* p = framed.data();
  std::size_t left = framed.size();
  while (left > 0) {
    const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error("connection broke while sending");
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

bool JsonlClient::recvLine(std::string& line) {
  CGRA_ASSERT_MSG(fd_ >= 0, "recvLine on a closed client");
  for (;;) {
    const std::size_t nl = rbuf_.find('\n');
    if (nl != std::string::npos) {
      line = rbuf_.substr(0, nl);
      rbuf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    char buf[8192];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      rbuf_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF (or a broken connection): session is over
  }
}

void JsonlClient::shutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void JsonlClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

#else  // !__unix__

JsonlClient JsonlClient::connectUnix(const std::string&) {
  throw Error("unix-socket clients are unavailable on this platform");
}

JsonlClient JsonlClient::connectTcp(std::uint16_t) {
  throw Error("TCP clients are unavailable on this platform");
}

void JsonlClient::sendLine(const std::string&) {
  throw Error("socket clients are unavailable on this platform");
}

bool JsonlClient::recvLine(std::string&) { return false; }

void JsonlClient::shutdownWrite() {}

void JsonlClient::close() { fd_ = -1; }

#endif

}  // namespace cgra::artifact
