#include "artifact/store.hpp"

#include <algorithm>
#include <filesystem>
#include <vector>

#include "support/fs.hpp"

namespace cgra::artifact {

namespace sfs = std::filesystem;

json::Value StoreCounters::toJson() const {
  json::Object o;
  o["hits"] = hits;
  o["memoryHits"] = memoryHits;
  o["diskHits"] = diskHits;
  o["misses"] = misses;
  o["inserts"] = inserts;
  o["evictions"] = evictions;
  o["invalid"] = invalid;
  o["hitRatePct"] = hitRate() * 100.0;
  return json::sortKeys(json::Value(std::move(o)));
}

ArtifactStore::ArtifactStore(StoreOptions options)
    : options_(std::move(options)) {
  if (options_.directory.empty()) return;
  fs::ensureWritableDir(options_.directory);

  // Index pre-existing entries, oldest-mtime first, so the LRU order of a
  // reopened store approximates the previous runs' access recency and the
  // byte cap applies across process lifetimes.
  std::vector<std::pair<sfs::file_time_type, sfs::path>> found;
  for (const auto& entry : sfs::directory_iterator(options_.directory)) {
    if (!entry.is_regular_file()) continue;
    const sfs::path& p = entry.path();
    if (p.extension() != ".json") continue;
    std::error_code ec;
    const auto mtime = sfs::last_write_time(p, ec);
    if (!ec) found.emplace_back(mtime, p);
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [mtime, p] : found) {
    std::error_code ec;
    const std::size_t bytes = static_cast<std::size_t>(sfs::file_size(p, ec));
    if (ec) continue;
    addDiskEntryLocked(p.stem().string(), bytes);
  }
  evictPastCapLocked();
}

std::string ArtifactStore::pathForKey(const std::string& key) const {
  return (sfs::path(options_.directory) / (key + ".json")).string();
}

void ArtifactStore::rememberLocked(
    const std::string& key, std::shared_ptr<const ScheduleArtifact> artifact) {
  if (options_.maxMemoryEntries == 0) return;
  if (auto it = memoryLruIndex_.find(key); it != memoryLruIndex_.end()) {
    memoryLru_.erase(it->second);
    memoryLruIndex_.erase(it);
  }
  memoryLru_.push_front(key);
  memoryLruIndex_[key] = memoryLru_.begin();
  memory_[key] = std::move(artifact);
  while (memory_.size() > options_.maxMemoryEntries) {
    const std::string victim = memoryLru_.back();
    memoryLru_.pop_back();
    memoryLruIndex_.erase(victim);
    memory_.erase(victim);
  }
}

void ArtifactStore::touchDiskLocked(const std::string& key) {
  const auto it = disk_.find(key);
  if (it == disk_.end()) return;
  lru_.erase(it->second.lruIt);
  lru_.push_front(key);
  it->second.lruIt = lru_.begin();
}

void ArtifactStore::addDiskEntryLocked(const std::string& key,
                                       std::size_t bytes) {
  if (const auto it = disk_.find(key); it != disk_.end()) {
    diskBytes_ -= it->second.bytes;
    diskBytes_ += bytes;
    it->second.bytes = bytes;
    touchDiskLocked(key);
    return;
  }
  lru_.push_front(key);
  disk_[key] = DiskEntry{bytes, lru_.begin()};
  diskBytes_ += bytes;
}

void ArtifactStore::evictPastCapLocked() {
  while (diskBytes_ > options_.maxDiskBytes && !lru_.empty()) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    const auto it = disk_.find(victim);
    if (it != disk_.end()) {
      diskBytes_ -= it->second.bytes;
      disk_.erase(it);
    }
    std::error_code ec;
    sfs::remove(pathForKey(victim), ec);
    ++counters_.evictions;
    // Keep memory and disk coherent for evicted keys: the hot layer may
    // legitimately outlive the file, so the entry stays — lookups then
    // re-publish to disk on the next insert of that key, not here.
  }
}

std::shared_ptr<const ScheduleArtifact> ArtifactStore::lookup(
    const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = memory_.find(key); it != memory_.end()) {
      ++counters_.hits;
      ++counters_.memoryHits;
      // Bump recency in both layers.
      if (auto lit = memoryLruIndex_.find(key);
          lit != memoryLruIndex_.end()) {
        memoryLru_.erase(lit->second);
        memoryLru_.push_front(key);
        lit->second = memoryLru_.begin();
      }
      touchDiskLocked(key);
      return it->second;
    }
  }

  if (options_.directory.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.misses;
    return nullptr;
  }

  // Disk probe outside the lock: parsing a large artifact must not serialize
  // other threads' lookups. The filesystem is the source of truth; the
  // index may lag behind another process, so probe the file directly.
  const std::string path = pathForKey(key);
  std::shared_ptr<ScheduleArtifact> loaded;
  try {
    if (!sfs::exists(path)) {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.misses;
      return nullptr;
    }
    loaded = std::make_shared<ScheduleArtifact>(
        ScheduleArtifact::fromJson(json::parseFile(path)));
    if (loaded->key != key)
      throw Error("artifact: key field does not match filename");
  } catch (const std::exception&) {
    // Corrupt, truncated or stale-format file: discard and miss.
    std::error_code ec;
    sfs::remove(path, ec);
    std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = disk_.find(key); it != disk_.end()) {
      diskBytes_ -= it->second.bytes;
      lru_.erase(it->second.lruIt);
      disk_.erase(it);
    }
    ++counters_.invalid;
    ++counters_.misses;
    return nullptr;
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.hits;
  ++counters_.diskHits;
  std::error_code ec;
  const std::size_t bytes = static_cast<std::size_t>(
      sfs::file_size(path, ec));
  if (!ec) addDiskEntryLocked(key, bytes);
  rememberLocked(key, loaded);
  return loaded;
}

void ArtifactStore::insert(
    std::shared_ptr<const ScheduleArtifact> artifact) {
  CGRA_ASSERT(artifact != nullptr && !artifact->key.empty());
  const std::string key = artifact->key;

  std::string serialized;
  // Compact form: cache files are machine-read far more often than
  // human-read, and the compact dump roughly halves both the disk footprint
  // and the warm-lookup parse time.
  if (!options_.directory.empty()) serialized = artifact->toJson().dump(0);

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.inserts;
    rememberLocked(key, artifact);
  }

  if (options_.directory.empty()) return;
  // Atomic publication: concurrent writers of one content-addressed key
  // write identical bytes; whichever rename lands last wins harmlessly.
  fs::atomicWriteFile(pathForKey(key), serialized + "\n");

  std::lock_guard<std::mutex> lock(mu_);
  addDiskEntryLocked(key, serialized.size() + 1);
  evictPastCapLocked();
}

StoreCounters ArtifactStore::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::size_t ArtifactStore::memoryEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memory_.size();
}

std::size_t ArtifactStore::diskBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return diskBytes_;
}

}  // namespace cgra::artifact
