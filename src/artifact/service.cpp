#include "artifact/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <fstream>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "apps/kernels.hpp"
#include "arch/factory.hpp"
#include "ctx/contexts.hpp"
#include "ctx/serialize.hpp"
#include "kir/lower_cdfg.hpp"
#include "kir/parser.hpp"
#include "kir/passes.hpp"
#include "sched/job_key.hpp"
#include "sched/scheduler.hpp"
#include "support/metrics_registry.hpp"
#include "support/thread_pool.hpp"

#ifdef __unix__
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace cgra::artifact {

const char* wireErrorCode(WireError code) {
  switch (code) {
    case WireError::Parse: return "parse";
    case WireError::UnknownComp: return "unknown_comp";
    case WireError::Unmappable: return "unmappable";
    case WireError::Overloaded: return "overloaded";
    case WireError::Shutdown: return "shutdown";
    case WireError::Internal: return "internal";
  }
  CGRA_UNREACHABLE("bad WireError");
}

json::Value ServiceStats::toJson() const {
  json::Object o;
  o["requests"] = requests;
  o["parseErrors"] = parseErrors;
  o["scheduled"] = scheduled;
  o["cacheHits"] = cacheHits;
  o["deduped"] = deduped;
  o["statsRequests"] = statsRequests;
  o["shedOverload"] = shedOverload;
  o["shedShutdown"] = shedShutdown;
  o["connectionsAccepted"] = connectionsAccepted;
  o["connectionsRefused"] = connectionsRefused;
  o["connectionsClosed"] = connectionsClosed;
  o["maxQueueDepth"] = maxQueueDepth;
  o["latencyCount"] = latencyCount;
  o["latencyP50Us"] = latencyP50Us;
  o["latencyP99Us"] = latencyP99Us;
  o["latencyMeanUs"] = latencyMeanUs;
  o["controlLatencyCount"] = controlLatencyCount;
  o["controlLatencyP50Us"] = controlLatencyP50Us;
  o["controlLatencyP99Us"] = controlLatencyP99Us;
  o["controlLatencyMeanUs"] = controlLatencyMeanUs;
  return json::sortKeys(json::Value(std::move(o)));
}

namespace {

using Clock = std::chrono::steady_clock;

/// One parsed schedule request. Mirrors the relevant `cgra-tool schedule`
/// flags; see service.hpp for the line format.
struct Request {
  json::Value id;  ///< echoed verbatim in the response (any JSON value)
  std::string comp;
  std::string kernel;      ///< bundled kernel name
  std::string kernelFile;  ///< or a KIR file path (wins when both set)
  unsigned unroll = 1;
  bool cse = false;
  unsigned maxContexts = 0;
  bool wantArtifact = false;
};

Request parseRequest(const json::Value& doc, bool includeArtifact) {
  if (!doc.isObject()) throw Error("request must be a JSON object");
  const json::Object& o = doc.asObject();
  Request r;
  r.wantArtifact = includeArtifact;
  if (const json::Value* v = o.find("id")) r.id = *v;
  if (const json::Value* v = o.find("comp")) r.comp = v->asString();
  if (r.comp.empty()) throw Error("request misses \"comp\"");
  if (const json::Value* v = o.find("kernel")) r.kernel = v->asString();
  if (const json::Value* v = o.find("kernelFile"))
    r.kernelFile = v->asString();
  if (r.kernel.empty() && r.kernelFile.empty())
    throw Error("request misses \"kernel\" (or \"kernelFile\")");
  if (const json::Value* v = o.find("unroll"))
    r.unroll = static_cast<unsigned>(v->asInt());
  if (const json::Value* v = o.find("cse")) r.cse = v->asBool();
  if (const json::Value* v = o.find("maxContexts"))
    r.maxContexts = static_cast<unsigned>(v->asInt());
  if (const json::Value* v = o.find("artifact"))
    r.wantArtifact = v->asBool();
  return r;
}

Composition resolveComposition(const std::string& name) {
  if (name.rfind("mesh", 0) == 0)
    return makeMesh(static_cast<unsigned>(std::stoul(name.substr(4))));
  if (name.size() == 1 && name[0] >= 'A' && name[0] <= 'F')
    return makeIrregular(name[0]);
  if (name.find(".json") != std::string::npos)
    return Composition::fromJsonFile(name);
  throw Error("unknown composition \"" + name +
              "\" (expected meshN, A..F, or a .json path)");
}

Cdfg resolveGraph(const Request& r) {
  kir::Function fn("");
  if (!r.kernelFile.empty()) {
    fn = kir::parseKernelFile(r.kernelFile);
  } else {
    bool found = false;
    for (apps::Workload& w : apps::allWorkloads())
      if (w.name == r.kernel) {
        fn = std::move(w.fn);
        found = true;
        break;
      }
    if (!found) throw Error("unknown kernel \"" + r.kernel + "\"");
  }
  if (r.cse) fn = kir::eliminateCommonSubexpressions(fn);
  if (r.unroll >= 2) fn = kir::unrollLoops(fn, r.unroll, true);
  return kir::lowerToCdfg(fn).graph;
}

/// Tracks one key being scheduled right now so identical concurrent
/// requests — from any connection — wait for it instead of scheduling again.
struct InFlightKey {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::shared_ptr<const ScheduleArtifact> artifact;
};

std::uint64_t usBetween(Clock::time_point a, Clock::time_point b) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count();
  return us < 0 ? 0 : static_cast<std::uint64_t>(us);
}

/// Request-scoped span breakdown (µs), the telemetry companion of one
/// window slot. The admitting thread stamps t0/admitted before the job is
/// submitted; the completing worker fills the rest before the slot's done
/// flag flips under winMu; the popper (IO thread or stream flusher) reads
/// it afterwards — the winMu acquire on `done` orders every field.
struct RequestSpans {
  Clock::time_point t0{};        ///< request line read off the wire
  Clock::time_point admitted{};  ///< admission decision made
  std::uint64_t admitUs = 0;     ///< read → admitted/shed decision
  std::uint64_t queueUs = 0;     ///< admitted → worker pickup
  std::uint64_t storeUs = 0;     ///< job key + store lookups + dedup wait
  std::uint64_t scheduleUs = 0;  ///< scheduler run (cold requests only)
  std::uint64_t serializeUs = 0; ///< response JSON dump
  std::uint64_t serviceUs = 0;   ///< worker pickup → response ready
  const char* outcome = "internal";  ///< ok|unmappable|parse|unknown_comp|
                                     ///< stats|metrics|shed_overload|
                                     ///< shed_shutdown|internal
  bool cacheHit = false;
  bool control = false;   ///< control-plane request (stats/metrics)
  json::Value id;         ///< request id, echoed into the access log
  std::string keyPrefix;  ///< first 12 chars of the job key, "" if none
};

/// One request's slot in a connection's in-order response window.
struct Slot {
  bool done = false;  ///< guarded by the connection's winMu
  std::string line;   ///< serialized response
  RequestSpans spans;
};

/// Append-only JSONL access log shared by every worker and the IO thread.
/// Its own mutex — never the service's hot-path lock — serializes lines;
/// a line is written when the response leaves the window toward the wire.
class AccessLog {
public:
  void open(const std::string& path) {
    std::lock_guard<std::mutex> lock(mu_);
    out_.open(path, std::ios::app);
    if (!out_.is_open())
      throw Error("cannot open access log for writing: " + path);
    enabled_.store(true, std::memory_order_relaxed);
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void write(const std::string& line) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!out_.is_open()) return;
    out_ << line << '\n';
    out_.flush();  // each line a complete record, tail-able mid-run
  }

private:
  std::atomic<bool> enabled_{false};
  std::mutex mu_;
  std::ofstream out_;
};

json::Value artifactResponse(const json::Value& id,
                             const ScheduleArtifact& art, bool cached,
                             bool wantArtifact, const Composition& comp) {
  json::Object o;
  o["v"] = kWireVersion;
  o["id"] = id;
  o["key"] = art.key;
  o["ok"] = art.ok;
  o["cached"] = cached;
  if (art.ok) {
    o["contexts"] = static_cast<std::int64_t>(art.stats.contextsUsed);
    o["fingerprint"] = std::to_string(art.schedule.fingerprint());
    if (wantArtifact) {
      // Ship the full document, with context images attached so the
      // consumer can deploy without linking the toolflow.
      ScheduleArtifact withCtx = art;
      withCtx.contexts = generateContexts(art.schedule, comp);
      o["artifact"] = withCtx.toJson();
    }
  } else {
    json::Object e;
    e["code"] = wireErrorCode(WireError::Unmappable);
    e["message"] = art.failure.message;
    e["reason"] = failureReasonName(art.failure.reason);
    o["error"] = json::Value(std::move(e));
  }
  return json::Value(std::move(o));
}

json::Value errorResponse(const json::Value& id, WireError code,
                          const std::string& message) {
  json::Object e;
  e["code"] = wireErrorCode(code);
  e["message"] = message;
  json::Object o;
  o["v"] = kWireVersion;
  o["id"] = id;
  o["ok"] = false;
  o["error"] = json::Value(std::move(e));
  return json::Value(std::move(o));
}

/// Best-effort id extraction for responses to requests that are never
/// parsed in full (shed paths): a malformed line sheds with a null id.
json::Value bestEffortId(const std::string& line) {
  try {
    const json::Value doc = json::parse(line);
    if (doc.isObject())
      if (const json::Value* v = doc.asObject().find("id")) return *v;
  } catch (...) {
  }
  return json::Value();
}

bool isBlank(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

#ifdef __unix__
/// write()-loop over a socket; MSG_NOSIGNAL so a vanished client surfaces
/// as an error return instead of SIGPIPE. Returns false when the peer is
/// gone.
bool sendAll(int fd, const std::string& data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}
#endif

}  // namespace

// ---------------------------------------------------------------------------
// Service implementation.

struct Service::Impl {
  /// One session: a socket connection (fd >= 0, read AND written by the IO
  /// thread) or a blocking stream session (fd == -1, read by the caller's
  /// thread, written by whichever worker completes the front slot).
  /// Responses always stream in this session's request order through
  /// `window`.
  struct Conn {
    Conn(std::uint64_t id_, int fd_) : id(id_), fd(fd_) {}

    const std::uint64_t id;
    const int fd;                  ///< -1 for stream sessions
    std::ostream* out = nullptr;   ///< stream sessions only

    // IO-thread-only state (socket connections). Only the IO thread ever
    // writes a socket (non-blocking, POLLOUT-driven) or closes it, so a
    // worker can never race a close, and a client that stops reading
    // parks bytes here instead of blocking a pool worker in send().
    std::string rbuf;        ///< bytes read but not yet split into lines
    std::string obuf;        ///< response bytes not yet on the wire
    std::size_t osent = 0;   ///< obuf prefix already sent

    // Guarded by the service mutex.
    bool paused = false;      ///< reading stopped at the in-flight cap
    std::size_t inflight = 0; ///< windowed (admitted OR shed), not yet
                              ///< popped off the window toward the wire
    std::uint64_t requests = 0;
    std::uint64_t shed = 0;

    std::atomic<bool> eof{false};     ///< no more reads (EOF/error/drain)
    std::atomic<bool> broken{false};  ///< writes fail; drop responses
    std::atomic<std::uint64_t> responses{0};

    std::mutex winMu;   ///< guards window and Slot::done/line
    std::deque<std::shared_ptr<Slot>> window;
    std::mutex writeMu; ///< stream sessions: serializes worker flushes
  };
  using ConnPtr = std::shared_ptr<Conn>;

  struct Listener {
    int fd = -1;
    std::string unixPath;  ///< non-empty: unlink on close
  };

  ArtifactStore& store;
  const ServiceOptions options;
  const std::size_t maxInFlight;
  const std::size_t queueBound;
  ThreadPool pool;

  mutable std::mutex mu;
  std::condition_variable cv;  ///< completions, drain, waitDone

  // Per-request outcome counters and latency live in the lock-free metrics
  // registry (DESIGN.md §13): workers bump them without touching `mu`.
  // Admission-coupled counters (requests, shed, queue depth, connection
  // lifecycle) stay inside the mu-held admission sections — that is what
  // makes a stats snapshot see sum(per-connection requests) == totals
  // exactly — and mirror into registry counters at the same sites.
  MetricsRegistry registry;
  Counter& mRequests =
      registry.counter("cgra_requests_total", "Request lines read");
  Counter& mResponses = registry.counter(
      "cgra_responses_total", "Responses handed to the wire or stream");
  Counter& mParseErrors = registry.counter(
      "cgra_parse_errors_total", "parse/unknown_comp failure responses");
  Counter& mScheduled = registry.counter(
      "cgra_scheduled_total", "Jobs actually run on the scheduler");
  Counter& mCacheHits = registry.counter("cgra_cache_hits_total",
                                         "Requests answered from the store");
  Counter& mDeduped = registry.counter(
      "cgra_deduped_total", "Requests coalesced onto an in-flight job");
  Counter& mStatsRequests = registry.counter("cgra_stats_requests_total",
                                             "{\"stats\":true} requests");
  Counter& mMetricsRequests = registry.counter(
      "cgra_metrics_requests_total", "{\"metrics\":true} requests");
  Counter& mShedOverload = registry.counter(
      "cgra_shed_overload_total", "Requests shed with code overloaded");
  Counter& mShedShutdown = registry.counter(
      "cgra_shed_shutdown_total", "Requests shed with code shutdown");
  Counter& mConnsAccepted = registry.counter("cgra_connections_accepted_total",
                                             "Sessions opened (any kind)");
  Counter& mConnsRefused = registry.counter(
      "cgra_connections_refused_total", "Connections closed at accept");
  Counter& mConnsClosed = registry.counter("cgra_connections_closed_total",
                                           "Sessions fully drained");
  Counter& mTracesSampled = registry.counter(
      "cgra_traces_sampled_total", "Cold runs recorded as Chrome traces");
  Gauge& gQueueDepth =
      registry.gauge("cgra_queue_depth", "Admitted requests in flight");
  Gauge& gConnections =
      registry.gauge("cgra_connections", "Live sessions (any kind)");
  AtomicHistogram& hCompile = registry.histogram(
      "cgra_compile_latency_us",
      "Compile-request latency, read to response ready (us)");
  AtomicHistogram& hControl = registry.histogram(
      "cgra_control_latency_us",
      "Control-request (stats/metrics) latency, read to response ready (us)");
  AtomicHistogram& hQueueWait = registry.histogram(
      "cgra_queue_wait_us", "Admitted to worker pickup (us)");
  AtomicHistogram& hStore = registry.histogram(
      "cgra_store_lookup_us", "Job key + store lookups + dedup wait (us)");
  AtomicHistogram& hSchedule =
      registry.histogram("cgra_schedule_us", "Scheduler run, cold jobs (us)");
  AtomicHistogram& hSerialize =
      registry.histogram("cgra_serialize_us", "Response JSON dump (us)");
  AtomicHistogram& hWrite = registry.histogram(
      "cgra_write_us", "Response ready to wire/stream handoff (us)");

  AccessLog accessLog;
  std::atomic<std::uint64_t> coldSeq{0};  ///< cold runs, for trace sampling

  ServiceStats counters;  ///< mu-guarded slice (see statsSnapshot)
  /// Rollup of counters from closed connections, so the per-connection
  /// conservation invariant (sum of live + closed == totals) stays exact
  /// after reaping. Guarded by mu.
  std::uint64_t closedRequests = 0;
  std::uint64_t closedResponses = 0;
  std::uint64_t closedShed = 0;
  std::size_t pendingJobs = 0;
  std::unordered_map<std::string, std::shared_ptr<InFlightKey>> inflightKeys;
  bool draining = false;
  bool ioRunning = false;
  bool ioExited = false;
  std::uint64_t nextConnId = 1;
  std::uint64_t accepted = 0;
  std::vector<Listener> listeners;
  std::vector<ConnPtr> conns;        ///< socket connections
  std::vector<ConnPtr> streamConns;  ///< live stream sessions (stats only)

  std::atomic<bool> drainRequested{false};
  std::thread ioThread;
  int wakePipe[2] = {-1, -1};

  Impl(ArtifactStore& s, ServiceOptions o)
      : store(s),
        options(o),
        maxInFlight(std::max<std::size_t>(1, o.maxInFlight)),
        queueBound(std::max<std::size_t>(1, o.queueBound)),
        pool(o.threads) {
    if (!options.accessLogPath.empty()) accessLog.open(options.accessLogPath);
#ifdef __unix__
    if (::pipe(wakePipe) == 0) {
      ::fcntl(wakePipe[0], F_SETFL, O_NONBLOCK);
    } else {
      wakePipe[0] = wakePipe[1] = -1;
    }
#endif
  }

  ~Impl() {
#ifdef __unix__
    for (const Listener& l : listeners)
      if (l.fd >= 0) ::close(l.fd);
    if (wakePipe[0] >= 0) ::close(wakePipe[0]);
    if (wakePipe[1] >= 0) ::close(wakePipe[1]);
#endif
  }

  void wakeIo() {
#ifdef __unix__
    if (wakePipe[1] >= 0) {
      const char b = 'w';
      [[maybe_unused]] const ssize_t n = ::write(wakePipe[1], &b, 1);
    }
#endif
  }

  bool drainingNow() const {  // callers may hold mu
    return draining || drainRequested.load(std::memory_order_relaxed);
  }

  /// Folds a closing session's counters into the closed-connection rollup
  /// (mu held): the per-connection conservation invariant stays exact
  /// across reaping. Also maintains the connection metrics.
  void retireConnLocked(const Conn& c) {
    closedRequests += c.requests;
    closedResponses += c.responses.load(std::memory_order_relaxed);
    closedShed += c.shed;
    mConnsClosed.inc();
    gConnections.set(
        static_cast<std::int64_t>(conns.size() + streamConns.size()));
  }

  // -- response plumbing ----------------------------------------------------

  /// Appends one access-log line for a response leaving the window and
  /// records its write-side span. Called off the hot-path lock, after the
  /// in-flight slot released. The span fields are additive by design:
  /// admitUs + queueUs + serviceUs + writeUs == totalUs exactly (writeUs
  /// is derived as the remainder: response ready → wire/stream handoff).
  void emitAccess(const Conn& c, const Slot& slot) {
    const RequestSpans& sp = slot.spans;
    const std::uint64_t totalUs = usBetween(sp.t0, Clock::now());
    const std::uint64_t accounted = sp.admitUs + sp.queueUs + sp.serviceUs;
    const std::uint64_t writeUs = totalUs > accounted ? totalUs - accounted : 0;
    hWrite.record(writeUs);
    if (!accessLog.enabled()) return;
    json::Object o;
    o["conn"] = c.id;
    o["peer"] = c.fd >= 0 ? "socket" : "stream";
    o["id"] = sp.id;
    o["key"] = sp.keyPrefix;
    o["outcome"] = sp.outcome;
    o["cacheHit"] = sp.cacheHit;
    o["admitUs"] = sp.admitUs;
    o["queueUs"] = sp.queueUs;
    o["storeUs"] = sp.storeUs;
    o["scheduleUs"] = sp.scheduleUs;
    o["serializeUs"] = sp.serializeUs;
    o["serviceUs"] = sp.serviceUs;
    o["writeUs"] = writeUs;
    o["totalUs"] = totalUs;
    accessLog.write(json::sortKeys(json::Value(std::move(o))).dump(0));
  }

  /// Streams every completed response at the front of a stream session's
  /// window. writeMu keeps concurrent completers from interleaving lines.
  /// The in-flight slots release only after the bytes reached `out`, so the
  /// session cannot end (and serveStream cannot return) mid-write.
  void flushStream(Conn& c) {
    std::lock_guard<std::mutex> wl(c.writeMu);
    std::size_t released = 0;
    std::vector<std::shared_ptr<Slot>> popped;
    for (;;) {
      std::shared_ptr<Slot> slot;
      {
        std::lock_guard<std::mutex> g(c.winMu);
        if (c.window.empty() || !c.window.front()->done) break;
        slot = std::move(c.window.front());
        c.window.pop_front();
      }
      std::string lineOut = std::move(slot->line);
      lineOut.push_back('\n');
      if (!c.broken.load(std::memory_order_relaxed) && c.out != nullptr) {
        (*c.out) << lineOut;
        c.out->flush();
      }
      popped.push_back(std::move(slot));
      ++released;
    }
    if (released > 0) {
      c.responses.fetch_add(released, std::memory_order_relaxed);
      mResponses.inc(released);
      {
        std::lock_guard<std::mutex> lock(mu);
        c.inflight -= released;
      }
      for (const auto& slot : popped) emitAccess(c, *slot);
    }
  }

  /// Publishes a finished response. Stream sessions flush right here on
  /// the worker; socket responses are handed to the IO thread, which owns
  /// all socket writes. pendingJobs releases now (the pool slot is free);
  /// the per-connection in-flight slot releases only once the response
  /// leaves the window toward the wire.
  void finishSlot(const ConnPtr& conn, const std::shared_ptr<Slot>& slot,
                  std::string line, bool admitted) {
    {
      std::lock_guard<std::mutex> g(conn->winMu);
      slot->line = std::move(line);
      slot->done = true;
    }
    if (conn->fd < 0) flushStream(*conn);
    if (admitted) {
      std::lock_guard<std::mutex> lock(mu);
      --pendingJobs;
      gQueueDepth.set(static_cast<std::int64_t>(pendingJobs));
    }
    cv.notify_all();
    if (conn->fd >= 0) wakeIo();  // the IO thread flushes + resumes reads
  }

#ifdef __unix__
  /// IO thread only: moves completed responses at the window's front into
  /// the connection's output buffer — releasing their in-flight slots —
  /// then sends what the socket will take without blocking. The buffer
  /// high-water mark stops draining the window (keeping in-flight slots
  /// held, which pauses reads) when a client stops reading.
  static constexpr std::size_t kObufHighWater = 256u * 1024;

  void pumpConn(const ConnPtr& c) {
    const bool broken = c->broken.load(std::memory_order_relaxed);
    std::size_t released = 0;
    std::vector<std::shared_ptr<Slot>> popped;
    {
      std::lock_guard<std::mutex> g(c->winMu);
      while (!c->window.empty() && c->window.front()->done &&
             (broken || c->obuf.size() - c->osent < kObufHighWater)) {
        if (!broken) {
          c->obuf += c->window.front()->line;
          c->obuf += '\n';
        }
        popped.push_back(std::move(c->window.front()));
        c->window.pop_front();
        ++released;
      }
    }
    if (released > 0) {
      c->responses.fetch_add(released, std::memory_order_relaxed);
      mResponses.inc(released);
      {
        std::lock_guard<std::mutex> lock(mu);
        c->inflight -= released;
        if (c->paused && c->inflight < maxInFlight) c->paused = false;
      }
      for (const auto& slot : popped) emitAccess(*c, *slot);
    }
    sendObuf(*c);
  }

  /// Non-blocking send of the buffered output (IO thread only). A consumed
  /// offset avoids re-erasing the front per send. Failure marks the
  /// connection broken: its reads stop and pending output is dropped.
  void sendObuf(Conn& c) {
    if (c.broken.load(std::memory_order_relaxed)) {
      c.obuf.clear();
      c.osent = 0;
      return;
    }
    while (c.osent < c.obuf.size()) {
      const ssize_t n = ::send(c.fd, c.obuf.data() + c.osent,
                               c.obuf.size() - c.osent,
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        c.osent += static_cast<std::size_t>(n);
      } else if (n < 0 && errno == EINTR) {
        continue;
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;  // POLLOUT resumes this send
      } else {
        c.broken.store(true);
        c.eof.store(true);
        c.rbuf.clear();
        c.obuf.clear();
        c.osent = 0;
        return;
      }
    }
    if (c.osent == c.obuf.size()) {
      c.obuf.clear();
      c.osent = 0;
    } else if (c.osent >= 64u * 1024) {
      c.obuf.erase(0, c.osent);
      c.osent = 0;
    }
  }
#endif  // __unix__

  // -- admission ------------------------------------------------------------

  /// Accepts one request line from a session: count it, then either admit
  /// it onto the worker pool or shed it with a typed error. Called by the
  /// IO thread (socket sessions) or the stream reader thread — always
  /// sequentially per connection, which is what keeps `window` in request
  /// order.
  void handleLine(const ConnPtr& conn, std::string line) {
    const Clock::time_point t0 = Clock::now();
    auto slot = std::make_shared<Slot>();
    slot->spans.t0 = t0;
    {
      std::lock_guard<std::mutex> g(conn->winMu);
      conn->window.push_back(slot);
    }
    enum class Admit { Job, Overloaded, Shutdown } admit;
    {
      std::lock_guard<std::mutex> lock(mu);
      ++counters.requests;
      ++conn->requests;
      // Shed requests hold an in-flight slot too (released when their
      // response leaves the window): a client flooding an overloaded
      // service hits its per-connection cap and stops being read, instead
      // of growing the window without bound.
      ++conn->inflight;
      if (drainingNow()) {
        ++counters.shedShutdown;
        ++conn->shed;
        admit = Admit::Shutdown;
      } else if (pendingJobs >= queueBound) {
        ++counters.shedOverload;
        ++conn->shed;
        admit = Admit::Overloaded;
      } else {
        ++pendingJobs;
        counters.maxQueueDepth = std::max(
            counters.maxQueueDepth, static_cast<std::uint64_t>(pendingJobs));
        gQueueDepth.set(static_cast<std::int64_t>(pendingJobs));
        admit = Admit::Job;
      }
    }
    mRequests.inc();
    if (admit != Admit::Job)
      (admit == Admit::Overloaded ? mShedOverload : mShedShutdown).inc();
    const Clock::time_point tAdmit = Clock::now();
    slot->spans.admitted = tAdmit;
    slot->spans.admitUs = usBetween(t0, tAdmit);
    if (admit == Admit::Job) {
      pool.submit([this, conn, slot, line = std::move(line)] {
        runJob(conn, slot, line);
      });
    } else {
      // Shed responses still travel through the window (order!) and are
      // rendered off the IO thread so a slow client can never stall it.
      const WireError code = admit == Admit::Overloaded ? WireError::Overloaded
                                                        : WireError::Shutdown;
      const char* message = admit == Admit::Overloaded
                                ? "service overloaded: global queue bound "
                                  "reached, retry later"
                                : "service is draining, request not accepted";
      const char* outcome =
          admit == Admit::Overloaded ? "shed_overload" : "shed_shutdown";
      pool.submit([this, conn, slot, line = std::move(line), code, message,
                   outcome] {
        RequestSpans& sp = slot->spans;
        const Clock::time_point tStart = Clock::now();
        sp.queueUs = usBetween(sp.admitted, tStart);
        sp.outcome = outcome;
        sp.id = bestEffortId(line);
        std::string out = errorResponse(sp.id, code, message).dump(0);
        sp.serviceUs = usBetween(tStart, Clock::now());
        finishSlot(conn, slot, std::move(out), /*admitted=*/false);
      });
    }
  }

  // -- the worker -----------------------------------------------------------

  void runJob(const ConnPtr& conn, const std::shared_ptr<Slot>& slot,
              const std::string& line) {
    RequestSpans& sp = slot->spans;
    const Clock::time_point tStart = Clock::now();
    sp.queueUs = usBetween(sp.admitted, tStart);
    std::string out;
    try {
      const json::Value resp = computeResponse(line, sp);
      const Clock::time_point tSer = Clock::now();
      out = resp.dump(0);
      sp.serializeUs = usBetween(tSer, Clock::now());
    } catch (...) {
      sp.outcome = "internal";
      out = errorResponse(json::Value(), WireError::Internal,
                          "internal error")
                .dump(0);
    }
    const Clock::time_point tDone = Clock::now();
    sp.serviceUs = usBetween(tStart, tDone);
    // Lock-free telemetry: latency and span histograms record on atomics,
    // never on the service's admission lock. Control-plane requests
    // ({"stats"}/{"metrics"}) land in their own histogram so a stats-heavy
    // client cannot move the CI-gated compile p50/p99.
    (sp.control ? hControl : hCompile).record(usBetween(sp.t0, tDone));
    hQueueWait.record(sp.queueUs);
    if (!sp.control) {
      hStore.record(sp.storeUs);
      hSerialize.record(sp.serializeUs);
      if (sp.scheduleUs > 0) hSchedule.record(sp.scheduleUs);
    }
    finishSlot(conn, slot, std::move(out), /*admitted=*/true);
  }

  json::Value computeResponse(const std::string& line, RequestSpans& sp) {
    json::Value id;
    json::Value doc;
    try {
      doc = json::parse(line);
    } catch (const std::exception& e) {
      mParseErrors.inc();
      sp.outcome = "parse";
      return errorResponse(id, WireError::Parse, e.what());
    }
    if (doc.isObject())
      if (const json::Value* v = doc.asObject().find("id")) id = *v;
    sp.id = id;
    if (doc.isObject())
      if (const json::Value* v = doc.asObject().find("stats");
          v != nullptr && v->isBool() && v->asBool()) {
        mStatsRequests.inc();
        sp.control = true;
        sp.outcome = "stats";
        json::Object o;
        o["v"] = kWireVersion;
        o["id"] = id;
        o["ok"] = true;
        o["stats"] = statsJson();
        return json::Value(std::move(o));
      }
    if (doc.isObject())
      if (const json::Value* v = doc.asObject().find("metrics");
          v != nullptr && v->isBool() && v->asBool()) {
        mMetricsRequests.inc();
        sp.control = true;
        sp.outcome = "metrics";
        json::Object o;
        o["v"] = kWireVersion;
        o["id"] = id;
        o["ok"] = true;
        o["metrics"] = registry.renderPrometheus();
        return json::Value(std::move(o));
      }

    Request req;
    try {
      req = parseRequest(doc, options.includeArtifact);
    } catch (const std::exception& e) {
      mParseErrors.inc();
      sp.outcome = "parse";
      return errorResponse(id, WireError::Parse, e.what());
    }
    Composition comp;
    try {
      comp = resolveComposition(req.comp);
    } catch (const std::exception& e) {
      mParseErrors.inc();
      sp.outcome = "unknown_comp";
      return errorResponse(id, WireError::UnknownComp, e.what());
    }
    Cdfg graph;
    try {
      graph = resolveGraph(req);
    } catch (const std::exception& e) {
      mParseErrors.inc();
      sp.outcome = "unknown_comp";
      return errorResponse(id, WireError::UnknownComp, e.what());
    }
    try {
      SchedulerOptions schedOpts;
      schedOpts.maxContexts = req.maxContexts;
      const Clock::time_point tKey = Clock::now();
      const std::string key = scheduleJobKey(comp, graph, schedOpts);
      sp.keyPrefix = key.substr(0, 12);

      std::shared_ptr<const ScheduleArtifact> art = store.lookup(key);
      bool cached = art != nullptr;
      sp.storeUs = usBetween(tKey, Clock::now());
      if (art == nullptr) {
        // Not in the store: either claim the key or wait for the worker —
        // possibly serving another connection — that did.
        std::shared_ptr<InFlightKey> entry;
        bool owner = false;
        {
          std::lock_guard<std::mutex> lock(mu);
          auto [it, inserted] =
              inflightKeys.emplace(key, std::make_shared<InFlightKey>());
          entry = it->second;
          owner = inserted;
        }
        if (owner) {
          // The claim may have raced the previous owner's retirement: it
          // publishes to the store before erasing its claim, so a claim
          // won after that erase finds the artifact on this second probe —
          // without it the key would be scheduled twice.
          art = store.lookup(key);
          if (art != nullptr) {
            cached = true;
            mCacheHits.inc();
            std::lock_guard<std::mutex> lock(mu);
            inflightKeys.erase(key);
          } else {
            const Clock::time_point tSched = Clock::now();
            const Scheduler scheduler(comp, schedOpts);
            ScheduleRequest sreq(graph);
            sreq.options = schedOpts;
            // Sampled cold runs carry the PR 2 decision trace and land as
            // one Chrome-JSON file per request under options.traceDir.
            const std::uint64_t seq =
                coldSeq.fetch_add(1, std::memory_order_relaxed);
            const bool sampled =
                options.traceSample > 0 && seq % options.traceSample == 0;
            sreq.trace.enabled = sampled;
            const ScheduleReport sched = scheduler.schedule(sreq);
            sp.scheduleUs = usBetween(tSched, Clock::now());
            if (sampled && sched.trace != nullptr &&
                !options.traceDir.empty())
              writeSampledTrace(key, seq, *sched.trace);
            art = std::make_shared<const ScheduleArtifact>(
                ScheduleArtifact::fromReport(key, sched));
            store.insert(art);
            mScheduled.inc();
            std::lock_guard<std::mutex> lock(mu);
            inflightKeys.erase(key);
          }
          {
            std::lock_guard<std::mutex> elock(entry->mu);
            entry->done = true;
            entry->artifact = art;
          }
          entry->cv.notify_all();
        } else {
          const Clock::time_point tWait = Clock::now();
          std::unique_lock<std::mutex> elock(entry->mu);
          entry->cv.wait(elock, [&] { return entry->done; });
          art = entry->artifact;
          cached = true;
          mDeduped.inc();
          sp.storeUs += usBetween(tWait, Clock::now());
        }
      } else {
        mCacheHits.inc();
      }
      sp.cacheHit = cached;
      sp.outcome = art->ok ? "ok" : "unmappable";
      return artifactResponse(id, *art, cached, req.wantArtifact, comp);
    } catch (const std::exception& e) {
      sp.outcome = "internal";
      return errorResponse(id, WireError::Internal, e.what());
    }
  }

  /// Best-effort write of one sampled cold run's Chrome trace; a failed
  /// write (missing/unwritable traceDir) drops the sample, never the
  /// response.
  void writeSampledTrace(const std::string& key, std::uint64_t seq,
                         const Trace& trace) {
    try {
      const std::string label = "serve " + key.substr(0, 12);
      json::writeFile(options.traceDir + "/serve-" + key.substr(0, 12) + "-" +
                          std::to_string(seq) + ".trace.json",
                      trace.toChromeJson(label));
      mTracesSampled.inc();
    } catch (...) {
    }
  }

  // -- live metrics ---------------------------------------------------------

  /// Fills the registry-backed slice of a ServiceStats snapshot (outcome
  /// counters + latency percentiles). Lock-free; the caller supplies the
  /// mu-guarded slice by copying `counters` under mu.
  void fillRegistryStats(ServiceStats& s) const {
    s.parseErrors = mParseErrors.value();
    s.scheduled = mScheduled.value();
    s.cacheHits = mCacheHits.value();
    s.deduped = mDeduped.value();
    s.statsRequests = mStatsRequests.value() + mMetricsRequests.value();
    const Log2Histogram compile = hCompile.snapshot();
    s.latencyCount = compile.count();
    s.latencyP50Us = compile.quantileUs(0.50);
    s.latencyP99Us = compile.quantileUs(0.99);
    s.latencyMeanUs = compile.meanUs();
    const Log2Histogram control = hControl.snapshot();
    s.controlLatencyCount = control.count();
    s.controlLatencyP50Us = control.quantileUs(0.50);
    s.controlLatencyP99Us = control.quantileUs(0.99);
    s.controlLatencyMeanUs = control.meanUs();
  }

  ServiceStats statsSnapshot() const {
    ServiceStats s;
    {
      std::lock_guard<std::mutex> lock(mu);
      s = counters;
    }
    fillRegistryStats(s);
    return s;
  }

  json::Value statsJson() const {
    json::Object o;
    {
      std::lock_guard<std::mutex> lock(mu);
      ServiceStats s = counters;
      fillRegistryStats(s);
      o["service"] = s.toJson();
      o["queueDepth"] = static_cast<std::uint64_t>(pendingJobs);
      o["draining"] = drainingNow();
      json::Array conns_json;
      auto connEntry = [](const Conn& c) {
        json::Object e;
        e["id"] = c.id;
        e["kind"] = c.fd >= 0 ? "socket" : "stream";
        e["requests"] = c.requests;
        e["responses"] = c.responses.load(std::memory_order_relaxed);
        e["inflight"] = static_cast<std::uint64_t>(c.inflight);
        e["shed"] = c.shed;
        return json::Value(std::move(e));
      };
      for (const ConnPtr& c : conns) conns_json.push_back(connEntry(*c));
      for (const ConnPtr& c : streamConns) conns_json.push_back(connEntry(*c));
      o["connections"] = json::Value(std::move(conns_json));
      // Rollup of already-reaped sessions: with it, sum of per-connection
      // requests/responses/shed in this document (live + closed) equals
      // the service totals exactly — snapshots are taken under mu, the
      // same lock every per-connection and total request count is bumped
      // under.
      json::Object closed;
      closed["connections"] = counters.connectionsClosed;
      closed["requests"] = closedRequests;
      closed["responses"] = closedResponses;
      closed["shed"] = closedShed;
      o["closed"] = json::Value(std::move(closed));
    }
    const StoreCounters sc = store.counters();
    o["store"] = sc.toJson();
    return json::sortKeys(json::Value(std::move(o)));
  }

  // -- stream sessions ------------------------------------------------------

  void serveStream(std::istream& in, std::ostream& out) {
    ConnPtr conn;
    {
      std::lock_guard<std::mutex> lock(mu);
      conn = std::make_shared<Conn>(nextConnId++, -1);
      conn->out = &out;
      streamConns.push_back(conn);
      ++counters.connectionsAccepted;
      mConnsAccepted.inc();
      gConnections.set(static_cast<std::int64_t>(conns.size() +
                                                 streamConns.size()));
    }
    std::string line;
    while (std::getline(in, line)) {
      if (isBlank(line)) continue;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] {
          return conn->inflight < maxInFlight || drainingNow();
        });
      }
      handleLine(conn, std::move(line));
    }
    // Every response — including shed ones still rendering on the pool —
    // must be on the wire before this session returns.
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] {
        if (conn->inflight != 0) return false;
        std::lock_guard<std::mutex> g(conn->winMu);
        return conn->window.empty();
      });
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      streamConns.erase(
          std::remove(streamConns.begin(), streamConns.end(), conn),
          streamConns.end());
      ++counters.connectionsClosed;
      retireConnLocked(*conn);
    }
  }

#ifdef __unix__
  // -- listeners and the poll/accept IO thread ------------------------------

  void addUnixListener(const std::string& path) {
    if (path.size() >= sizeof(sockaddr_un{}.sun_path))
      throw Error("socket path too long: " + path);
    struct stat st {};
    if (::lstat(path.c_str(), &st) == 0) {
      if (!S_ISSOCK(st.st_mode))
        throw Error("refusing to replace " + path +
                    ": existing file is not a socket");
      ::unlink(path.c_str());  // a stale socket from a previous run
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw Error("cannot create unix socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    path.copy(addr.sun_path, sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(fd, 64) != 0) {
      ::close(fd);
      throw Error("cannot bind/listen on " + path);
    }
    std::lock_guard<std::mutex> lock(mu);
    CGRA_ASSERT_MSG(!ioRunning, "addUnixListener after start()");
    listeners.push_back(Listener{fd, path});
  }

  std::uint16_t addTcpListener(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw Error("cannot create TCP socket");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(fd, 64) != 0) {
      ::close(fd);
      throw Error("cannot bind/listen on 127.0.0.1:" + std::to_string(port));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
    std::lock_guard<std::mutex> lock(mu);
    CGRA_ASSERT_MSG(!ioRunning, "addTcpListener after start()");
    listeners.push_back(Listener{fd, ""});
    return ntohs(bound.sin_port);
  }

  void closeListeners() {
    std::vector<Listener> doomed;
    {
      std::lock_guard<std::mutex> lock(mu);
      doomed.swap(listeners);
    }
    for (const Listener& l : doomed) {
      if (l.fd >= 0) ::close(l.fd);
      if (!l.unixPath.empty()) ::unlink(l.unixPath.c_str());
    }
  }

  void acceptOne(int listenFd) {
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) return;
    bool refuse = false;
    bool reachedMax = false;
    ConnPtr conn;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (options.maxClients != 0 && conns.size() >= options.maxClients) {
        refuse = true;
        ++counters.connectionsRefused;
        mConnsRefused.inc();
      } else {
        conn = std::make_shared<Conn>(nextConnId++, fd);
        conns.push_back(conn);
        ++accepted;
        ++counters.connectionsAccepted;
        mConnsAccepted.inc();
        gConnections.set(static_cast<std::int64_t>(conns.size() +
                                                   streamConns.size()));
        reachedMax =
            options.maxConnections != 0 && accepted >= options.maxConnections;
      }
    }
    if (refuse) {
      sendAll(fd, errorResponse(json::Value(), WireError::Overloaded,
                                "too many clients, connection refused")
                          .dump(0) +
                      "\n");
      ::close(fd);
      return;
    }
    if (reachedMax) closeListeners();
  }

  void readConn(const ConnPtr& conn) {
    char buf[8192];
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->rbuf.append(buf, static_cast<std::size_t>(n));
      processBuffer(conn);
    } else if (n == 0) {
      // Half-close: a client may shut down its write side after sending a
      // batch; finish answering what it sent.
      processBuffer(conn);
      conn->eof.store(true);
    } else if (errno != EINTR && errno != EAGAIN) {
      conn->eof.store(true);
      conn->broken.store(true);
      conn->rbuf.clear();  // a broken peer is owed nothing
    }
  }

  /// Splits buffered bytes into lines and admits them, honoring the
  /// per-connection cap (pause) — IO thread only. A consumed offset with
  /// one compaction per call keeps a large buffered batch O(n), not the
  /// O(n^2) of erasing the front per line.
  void processBuffer(const ConnPtr& conn) {
    std::size_t pos = 0;
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (conn->paused && !drainingNow()) break;
      }
      const std::size_t nl = conn->rbuf.find('\n', pos);
      if (nl == std::string::npos) break;
      std::string line = conn->rbuf.substr(pos, nl - pos);
      pos = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (isBlank(line)) continue;
      handleLine(conn, std::move(line));
      {
        std::lock_guard<std::mutex> lock(mu);
        if (conn->inflight >= maxInFlight) {
          conn->paused = true;
          if (!drainingNow()) break;
        }
      }
    }
    if (pos > 0) conn->rbuf.erase(0, pos);
  }

  bool connDrained(const ConnPtr& conn) {
    // IO thread only: rbuf/obuf are IO-thread state. A buffered complete
    // line still owes a response and an unsent response byte still owes a
    // write, so both block closing; a windowed slot (done or not) holds an
    // in-flight count until pumpConn pops it, so inflight == 0 means every
    // response reached obuf and obuf empty means every byte was sent (or
    // the connection broke, forfeiting its output).
    if (conn->rbuf.find('\n') != std::string::npos) return false;
    if (conn->osent < conn->obuf.size() &&
        !conn->broken.load(std::memory_order_relaxed))
      return false;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (conn->inflight != 0) return false;
    }
    std::lock_guard<std::mutex> g(conn->winMu);
    return conn->window.empty();
  }

  /// Converts an async drain request, flushes completed responses onto the
  /// wire, resumes un-paused connections with buffered lines, and reaps
  /// drained EOF connections. IO thread only.
  void sweep() {
    bool startDrain = false;
    std::vector<ConnPtr> snapshot;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (drainRequested.load() && !draining) {
        draining = true;
        startDrain = true;
      }
      snapshot = conns;
    }
    if (startDrain) {
      closeListeners();
      // Every line already read off a socket gets an answer (the shed path
      // tags them `shutdown`); nothing new is read.
      for (const ConnPtr& c : snapshot) {
        processBuffer(c);
        c->eof.store(true);
      }
      cv.notify_all();  // stream sessions blocked on admission
    }
    // Move finished responses window -> obuf -> socket (this is the only
    // place socket bytes are written), releasing in-flight slots and
    // un-pausing as responses leave.
    for (const ConnPtr& c : snapshot) pumpConn(c);
    if (!startDrain) {
      // Buffered lines wait on the pause flag only — a half-closed (EOF)
      // connection still gets its remaining buffered batch answered.
      for (const ConnPtr& c : snapshot) {
        bool runnable;
        {
          std::lock_guard<std::mutex> lock(mu);
          runnable = !c->paused;
        }
        if (runnable && c->rbuf.find('\n') != std::string::npos)
          processBuffer(c);
      }
    }
    // Reap connections that reached EOF and owe nothing.
    for (const ConnPtr& c : snapshot) {
      if (!c->eof.load() || !connDrained(c)) continue;
      {
        std::lock_guard<std::mutex> lock(mu);
        const auto it = std::find(conns.begin(), conns.end(), c);
        if (it == conns.end()) continue;
        conns.erase(it);
        ++counters.connectionsClosed;
        retireConnLocked(*c);
      }
      ::close(c->fd);
    }
    cv.notify_all();
  }

  void ioLoop() {
    std::vector<pollfd> pfds;
    std::vector<int> polledListeners;
    std::vector<ConnPtr> polledConns;
    for (;;) {
      pfds.clear();
      polledListeners.clear();
      polledConns.clear();
      {
        std::lock_guard<std::mutex> lock(mu);
        if (listeners.empty() && conns.empty()) break;
        pfds.push_back(pollfd{wakePipe[0], POLLIN, 0});
        if (!drainingNow())
          for (const Listener& l : listeners) {
            pfds.push_back(pollfd{l.fd, POLLIN, 0});
            polledListeners.push_back(l.fd);
          }
        for (const ConnPtr& c : conns) {
          short events = 0;
          if (!c->paused && !c->eof.load()) events |= POLLIN;
          // obuf is IO-thread state (this thread): pending bytes need a
          // POLLOUT wakeup to resume the non-blocking send.
          if (c->osent < c->obuf.size() &&
              !c->broken.load(std::memory_order_relaxed))
            events |= POLLOUT;
          if (events != 0) {
            pfds.push_back(pollfd{c->fd, events, 0});
            polledConns.push_back(c);
          }
        }
      }
      // A finite timeout is a belt-and-braces guard against a lost wakeup;
      // every state change also writes the wake pipe.
      ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 200);
      if ((pfds[0].revents & POLLIN) != 0) {
        char buf[64];
        while (::read(wakePipe[0], buf, sizeof(buf)) > 0) {
        }
      }
      std::size_t idx = 1;
      for (const int lfd : polledListeners) {
        if ((pfds[idx].revents & POLLIN) != 0) acceptOne(lfd);
        ++idx;
      }
      for (const ConnPtr& c : polledConns) {
        // POLLOUT-only wakeups (a blocked send became writable) are
        // handled by sweep()'s pump; an error on a write-pending EOF
        // connection surfaces there as a failed send.
        if (!c->eof.load() &&
            (pfds[idx].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
          readConn(c);
        ++idx;
      }
      sweep();
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      ioExited = true;
    }
    cv.notify_all();
  }
#endif  // __unix__
};

Service::Service(ArtifactStore& store, ServiceOptions options)
    : impl_(std::make_unique<Impl>(store, options)) {}

Service::~Service() { stop(); }

void Service::addUnixListener(const std::string& path) {
#ifdef __unix__
  impl_->addUnixListener(path);
#else
  (void)path;
  throw Error("unix-socket serving is unavailable on this platform");
#endif
}

std::uint16_t Service::addTcpListener(std::uint16_t port) {
#ifdef __unix__
  return impl_->addTcpListener(port);
#else
  (void)port;
  throw Error("TCP serving is unavailable on this platform");
#endif
}

void Service::start() {
#ifdef __unix__
  std::lock_guard<std::mutex> lock(impl_->mu);
  CGRA_ASSERT_MSG(!impl_->ioRunning, "start() called twice");
  impl_->ioRunning = true;
  impl_->ioExited = false;
  impl_->ioThread = std::thread([this] { impl_->ioLoop(); });
#else
  throw Error("socket serving is unavailable on this platform");
#endif
}

void Service::notifyDrain() {
  // Async-signal-safe: one relaxed atomic store and one pipe write.
  impl_->drainRequested.store(true, std::memory_order_relaxed);
  impl_->wakeIo();
}

void Service::waitDone() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  if (!impl_->ioRunning) return;
  impl_->cv.wait(lock, [&] { return impl_->ioExited; });
}

void Service::drain() {
  notifyDrain();
  {
    // Stream-only services have no IO thread to convert the request; mark
    // the draining state directly so serveStream sheds immediately.
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (!impl_->ioRunning) impl_->draining = true;
  }
  impl_->cv.notify_all();
  waitDone();
}

void Service::stop() {
  bool running;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    running = impl_->ioRunning;
  }
  if (running) {
    notifyDrain();
    waitDone();
    if (impl_->ioThread.joinable()) impl_->ioThread.join();
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      impl_->ioRunning = false;
    }
  }
  impl_->pool.wait();
}

void Service::serveStream(std::istream& in, std::ostream& out) {
  impl_->serveStream(in, out);
}

ServiceStats Service::stats() const { return impl_->statsSnapshot(); }

json::Value Service::statsJson() const { return impl_->statsJson(); }

std::string Service::metricsText() const {
  return impl_->registry.renderPrometheus();
}

// ---------------------------------------------------------------------------
// Thin wrappers over the class (the PR-4 entry points).

ServiceStats serveJsonl(std::istream& in, std::ostream& out,
                        ArtifactStore& store, const ServiceOptions& options) {
  Service service(store, options);
  service.serveStream(in, out);
  return service.stats();
}

ServiceStats serveUnixSocket(const std::string& path, ArtifactStore& store,
                             const ServiceOptions& options,
                             std::uint64_t maxConnections) {
  ServiceOptions opts = options;
  opts.maxConnections = maxConnections;
  Service service(store, opts);
  service.addUnixListener(path);
  service.start();
  service.waitDone();
  service.stop();
  return service.stats();
}

}  // namespace cgra::artifact
