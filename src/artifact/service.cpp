#include "artifact/service.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <utility>

#include "apps/kernels.hpp"
#include "arch/factory.hpp"
#include "ctx/contexts.hpp"
#include "ctx/serialize.hpp"
#include "kir/lower_cdfg.hpp"
#include "kir/parser.hpp"
#include "kir/passes.hpp"
#include "sched/job_key.hpp"
#include "sched/scheduler.hpp"
#include "support/thread_pool.hpp"

#ifdef __unix__
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <streambuf>
#endif

namespace cgra::artifact {

json::Value ServiceStats::toJson() const {
  json::Object o;
  o["requests"] = requests;
  o["parseErrors"] = parseErrors;
  o["scheduled"] = scheduled;
  o["cacheHits"] = cacheHits;
  o["deduped"] = deduped;
  return json::sortKeys(json::Value(std::move(o)));
}

namespace {

/// One parsed schedule request. Mirrors the relevant `cgra-tool schedule`
/// flags; see service.hpp for the line format.
struct Request {
  json::Value id;  ///< echoed verbatim in the response (any JSON value)
  std::string comp;
  std::string kernel;      ///< bundled kernel name
  std::string kernelFile;  ///< or a KIR file path (wins when both set)
  unsigned unroll = 1;
  bool cse = false;
  unsigned maxContexts = 0;
  bool wantArtifact = false;
};

Request parseRequest(const json::Value& doc, bool includeArtifact) {
  if (!doc.isObject()) throw Error("request must be a JSON object");
  const json::Object& o = doc.asObject();
  Request r;
  r.wantArtifact = includeArtifact;
  if (const json::Value* v = o.find("id")) r.id = *v;
  if (const json::Value* v = o.find("comp")) r.comp = v->asString();
  if (r.comp.empty()) throw Error("request misses \"comp\"");
  if (const json::Value* v = o.find("kernel")) r.kernel = v->asString();
  if (const json::Value* v = o.find("kernelFile"))
    r.kernelFile = v->asString();
  if (r.kernel.empty() && r.kernelFile.empty())
    throw Error("request misses \"kernel\" (or \"kernelFile\")");
  if (const json::Value* v = o.find("unroll"))
    r.unroll = static_cast<unsigned>(v->asInt());
  if (const json::Value* v = o.find("cse")) r.cse = v->asBool();
  if (const json::Value* v = o.find("maxContexts"))
    r.maxContexts = static_cast<unsigned>(v->asInt());
  if (const json::Value* v = o.find("artifact"))
    r.wantArtifact = v->asBool();
  return r;
}

Composition resolveComposition(const std::string& name) {
  if (name.rfind("mesh", 0) == 0)
    return makeMesh(static_cast<unsigned>(std::stoul(name.substr(4))));
  if (name.size() == 1 && name[0] >= 'A' && name[0] <= 'F')
    return makeIrregular(name[0]);
  if (name.find(".json") != std::string::npos)
    return Composition::fromJsonFile(name);
  throw Error("unknown composition \"" + name +
              "\" (expected meshN, A..F, or a .json path)");
}

Cdfg resolveGraph(const Request& r) {
  kir::Function fn("");
  if (!r.kernelFile.empty()) {
    fn = kir::parseKernelFile(r.kernelFile);
  } else {
    bool found = false;
    for (apps::Workload& w : apps::allWorkloads())
      if (w.name == r.kernel) {
        fn = std::move(w.fn);
        found = true;
        break;
      }
    if (!found) throw Error("unknown kernel \"" + r.kernel + "\"");
  }
  if (r.cse) fn = kir::eliminateCommonSubexpressions(fn);
  if (r.unroll >= 2) fn = kir::unrollLoops(fn, r.unroll, true);
  return kir::lowerToCdfg(fn).graph;
}

/// Tracks one key being scheduled right now so identical concurrent
/// requests wait for it instead of scheduling again.
struct InFlight {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::shared_ptr<const ScheduleArtifact> artifact;
};

/// One request's slot in the in-order response window.
struct Slot {
  bool done = false;
  std::string line;  ///< serialized response
};

json::Value artifactResponse(const json::Value& id,
                             const ScheduleArtifact& art, bool cached,
                             bool wantArtifact, const Composition& comp) {
  json::Object o;
  o["id"] = id;
  o["key"] = art.key;
  o["ok"] = art.ok;
  o["cached"] = cached;
  if (art.ok) {
    o["contexts"] = static_cast<std::int64_t>(art.stats.contextsUsed);
    o["fingerprint"] = std::to_string(art.schedule.fingerprint());
    if (wantArtifact) {
      // Ship the full document, with context images attached so the
      // consumer can deploy without linking the toolflow.
      ScheduleArtifact withCtx = art;
      withCtx.contexts = generateContexts(art.schedule, comp);
      o["artifact"] = withCtx.toJson();
    }
  } else {
    o["failureReason"] = failureReasonName(art.failure.reason);
    o["error"] = art.failure.message;
  }
  return json::Value(std::move(o));
}

json::Value errorResponse(const json::Value& id, const std::string& message) {
  json::Object o;
  o["id"] = id;
  o["ok"] = false;
  o["error"] = message;
  return json::Value(std::move(o));
}

}  // namespace

ServiceStats serveJsonl(std::istream& in, std::ostream& out,
                        ArtifactStore& store, const ServiceOptions& options) {
  ServiceStats stats;
  ThreadPool pool(options.threads);
  const std::size_t maxInFlight = std::max<std::size_t>(1, options.maxInFlight);

  std::mutex mu;                 // guards window, inflight, stats
  std::condition_variable cv;    // signaled when a slot completes
  std::deque<std::shared_ptr<Slot>> window;  // request order
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight;

  auto flushFront = [&](std::unique_lock<std::mutex>& lock, bool all) {
    // Stream every completed response at the window's front; with `all`,
    // block until the window drains (EOF path).
    for (;;) {
      cv.wait(lock, [&] {
        return window.empty() || window.front()->done ||
               (!all && window.size() < maxInFlight);
      });
      while (!window.empty() && window.front()->done) {
        const std::string line = std::move(window.front()->line);
        window.pop_front();
        lock.unlock();
        out << line << "\n" << std::flush;
        lock.lock();
      }
      if (window.empty() || (!all && window.size() < maxInFlight)) return;
    }
  };

  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    auto slot = std::make_shared<Slot>();
    {
      std::unique_lock<std::mutex> lock(mu);
      ++stats.requests;
      if (window.size() >= maxInFlight) flushFront(lock, false);
      window.push_back(slot);
    }

    pool.submit([&, slot, line] {
      json::Value response;
      try {
        json::Value id;
        try {
          const json::Value doc = json::parse(line);
          const Request req = parseRequest(doc, options.includeArtifact);
          id = req.id;

          const Composition comp = resolveComposition(req.comp);
          const Cdfg graph = resolveGraph(req);
          SchedulerOptions schedOpts;
          schedOpts.maxContexts = req.maxContexts;
          const std::string key = scheduleJobKey(comp, graph, schedOpts);

          std::shared_ptr<const ScheduleArtifact> art = store.lookup(key);
          bool cached = art != nullptr;
          if (art == nullptr) {
            // Not in the store: either claim the key or wait for the
            // worker that did.
            std::shared_ptr<InFlight> entry;
            bool owner = false;
            {
              std::unique_lock<std::mutex> lock(mu);
              auto [it, inserted] =
                  inflight.emplace(key, std::make_shared<InFlight>());
              entry = it->second;
              owner = inserted;
            }
            if (owner) {
              const Scheduler scheduler(comp, schedOpts);
              ScheduleRequest sreq(graph);
              sreq.options = schedOpts;
              const ScheduleReport sched = scheduler.schedule(sreq);
              art = std::make_shared<const ScheduleArtifact>(
                  ScheduleArtifact::fromReport(key, sched));
              store.insert(art);
              {
                std::unique_lock<std::mutex> lock(mu);
                ++stats.scheduled;
                inflight.erase(key);
              }
              {
                std::lock_guard<std::mutex> elock(entry->mu);
                entry->done = true;
                entry->artifact = art;
              }
              entry->cv.notify_all();
            } else {
              std::unique_lock<std::mutex> elock(entry->mu);
              entry->cv.wait(elock, [&] { return entry->done; });
              art = entry->artifact;
              cached = true;
              std::unique_lock<std::mutex> lock(mu);
              ++stats.deduped;
            }
          } else {
            std::unique_lock<std::mutex> lock(mu);
            ++stats.cacheHits;
          }
          response =
              artifactResponse(id, *art, cached, req.wantArtifact, comp);
        } catch (const std::exception& e) {
          {
            std::unique_lock<std::mutex> lock(mu);
            ++stats.parseErrors;
          }
          response = errorResponse(id, e.what());
        }
        slot->line = response.dump(0);
      } catch (...) {
        slot->line = "{\"ok\":false,\"error\":\"internal error\"}";
      }
      {
        std::unique_lock<std::mutex> lock(mu);
        slot->done = true;
      }
      cv.notify_all();
    });
  }

  {
    std::unique_lock<std::mutex> lock(mu);
    flushFront(lock, true);
  }
  pool.wait();
  return stats;
}

#ifdef __unix__

namespace {

/// Minimal streambuf over a connected socket fd, enabling std::istream /
/// std::ostream line IO on a unix-socket connection.
class FdStreambuf : public std::streambuf {
public:
  explicit FdStreambuf(int fd) : fd_(fd) {
    setg(rbuf_, rbuf_, rbuf_);
    setp(wbuf_, wbuf_ + sizeof(wbuf_));
  }

protected:
  int underflow() override {
    const ssize_t n = ::read(fd_, rbuf_, sizeof(rbuf_));
    if (n <= 0) return traits_type::eof();
    setg(rbuf_, rbuf_, rbuf_ + n);
    return traits_type::to_int_type(rbuf_[0]);
  }

  int overflow(int ch) override {
    if (sync() != 0) return traits_type::eof();
    if (ch != traits_type::eof()) {
      wbuf_[0] = static_cast<char>(ch);
      pbump(1);
    }
    return ch;
  }

  int sync() override {
    const char* p = pbase();
    while (p < pptr()) {
      const ssize_t n = ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
      if (n <= 0) return -1;
      p += n;
    }
    setp(wbuf_, wbuf_ + sizeof(wbuf_));
    return 0;
  }

private:
  int fd_;
  char rbuf_[4096];
  char wbuf_[4096];
};

}  // namespace

ServiceStats serveUnixSocket(const std::string& path, ArtifactStore& store,
                             const ServiceOptions& options,
                             std::uint64_t maxConnections) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path))
    throw Error("socket path too long: " + path);
  const int listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listenFd < 0) throw Error("cannot create unix socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  path.copy(addr.sun_path, sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());  // a stale socket file from a previous run
  if (::bind(listenFd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listenFd, 8) != 0) {
    ::close(listenFd);
    throw Error("cannot bind/listen on " + path);
  }

  ServiceStats total;
  for (std::uint64_t served = 0;
       maxConnections == 0 || served < maxConnections; ++served) {
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) break;
    FdStreambuf buf(fd);
    std::istream in(&buf);
    std::ostream out(&buf);
    const ServiceStats s = serveJsonl(in, out, store, options);
    out.flush();
    ::close(fd);
    total.requests += s.requests;
    total.parseErrors += s.parseErrors;
    total.scheduled += s.scheduled;
    total.cacheHits += s.cacheHits;
    total.deduped += s.deduped;
  }
  ::close(listenFd);
  ::unlink(path.c_str());
  return total;
}

#else

ServiceStats serveUnixSocket(const std::string&, ArtifactStore&,
                             const ServiceOptions&, std::uint64_t) {
  throw Error("unix-socket serving is unavailable on this platform");
}

#endif  // __unix__

}  // namespace cgra::artifact
