// Content-addressed, size-capped artifact store with an in-memory hot layer
// (DESIGN.md §10).
//
// Layering:
//  * Memory: key → shared_ptr<const ScheduleArtifact>, LRU-capped. The hot
//    layer makes repeated lookups within one process (sweep matrices,
//    the batch compile service) pointer-cheap.
//  * Disk (optional): one `<key>.json` per artifact under the store
//    directory. Writes go through fs::atomicWriteFile (unique temp +
//    rename), so concurrent sweep threads — or separate processes sharing
//    one cache directory — never expose partial files; racing writers of
//    one content-addressed key write identical bytes and the last rename
//    wins harmlessly. Disk usage is LRU-capped: inserting past
//    `maxDiskBytes` evicts the least-recently-used keys' files.
//
// Every lookup verifies the artifact at load time (format tag, schedule
// fingerprint); a corrupt or stale file counts as `invalid`, is deleted
// best-effort, and reads as a miss — the caller just reschedules.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "artifact/artifact.hpp"

namespace cgra::artifact {

struct StoreOptions {
  /// On-disk directory; empty runs the store memory-only.
  std::string directory;
  /// Disk budget in bytes; exceeding it evicts least-recently-used entries.
  std::size_t maxDiskBytes = 256ull << 20;
  /// Hot-layer capacity in artifacts.
  std::size_t maxMemoryEntries = 1024;
};

/// Hit/miss/evict counters, surfaced through SweepReport and `cgra-tool`.
struct StoreCounters {
  std::uint64_t hits = 0;        ///< lookups served (memory or disk)
  std::uint64_t memoryHits = 0;
  std::uint64_t diskHits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;   ///< disk files evicted by the size cap
  std::uint64_t invalid = 0;     ///< corrupt/stale files discarded on load

  /// Fraction of lookups served from either layer, in [0, 1]; 0 before the
  /// first lookup. The serve-mode live metrics report this as a percentage.
  double hitRate() const {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups);
  }

  json::Value toJson() const;
};

class ArtifactStore {
public:
  /// Opens (and creates) the store. With a directory, existing `*.json`
  /// entries are indexed (size + mtime recency) so the LRU cap spans
  /// previous runs. Throws cgra::Error when the directory is unusable.
  explicit ArtifactStore(StoreOptions options = {});

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  /// Returns the artifact for `key`, or nullptr on miss. Thread-safe.
  std::shared_ptr<const ScheduleArtifact> lookup(const std::string& key);

  /// Inserts an artifact under artifact->key (memory, then disk when
  /// configured), evicting LRU disk entries past the byte cap. Thread-safe;
  /// concurrent inserts of one key are idempotent.
  void insert(std::shared_ptr<const ScheduleArtifact> artifact);

  StoreCounters counters() const;
  std::size_t memoryEntries() const;
  std::size_t diskBytes() const;
  const std::string& directory() const { return options_.directory; }

private:
  struct DiskEntry {
    std::size_t bytes = 0;
    std::list<std::string>::iterator lruIt;  ///< position in lru_
  };

  std::string pathForKey(const std::string& key) const;
  void touchDiskLocked(const std::string& key);
  void addDiskEntryLocked(const std::string& key, std::size_t bytes);
  void evictPastCapLocked();
  void rememberLocked(const std::string& key,
                      std::shared_ptr<const ScheduleArtifact> artifact);

  StoreOptions options_;
  mutable std::mutex mu_;
  StoreCounters counters_;
  // Hot layer: key → artifact with its own LRU list.
  std::unordered_map<std::string, std::shared_ptr<const ScheduleArtifact>>
      memory_;
  std::list<std::string> memoryLru_;  ///< front = most recent
  std::unordered_map<std::string, std::list<std::string>::iterator>
      memoryLruIndex_;
  // Disk index: key → size + recency (front of lru_ = most recent).
  std::unordered_map<std::string, DiskEntry> disk_;
  std::list<std::string> lru_;
  std::size_t diskBytes_ = 0;
};

}  // namespace cgra::artifact
