// Persistent schedule artifacts: the versioned, canonical serialization of
// one scheduling result (DESIGN.md §10).
//
// The scheduler is deliberately expensive (longest-path list scheduling
// with speculation, copy routing and loop-compatibility checks) and a
// deterministic pure function of its inputs, so its output is worth
// persisting: exploration workloads (sweeps, synthesis ranking, property
// tests) re-schedule identical (composition × kernel × options) jobs over
// and over. A ScheduleArtifact captures everything a consumer needs —
// placements, routes/copies, predication and C-Box assignments, CCU
// branches, live bindings, stats, metrics counters, and optionally the
// encoded context images — with a bit-exact toJson/fromJson round trip:
// deserializing an artifact yields a Schedule whose fingerprint() equals
// the original's, which runs identically on the Simulator and passes
// validate.cpp unchanged. Failed runs round-trip too (negative caching):
// an unmappable job's typed FailureReason is as deterministic as a
// successful schedule.
#pragma once

#include <optional>
#include <string>

#include "ctx/contexts.hpp"
#include "json/json.hpp"
#include "sched/scheduler.hpp"

namespace cgra::artifact {

/// Format tag of the on-disk document. Bump together with the structural
/// layout; readers reject unknown tags (a miss, never a misparse).
inline constexpr const char* kArtifactFormat = "cgra-artifact-v1";

/// One cached scheduling result: success with a full schedule, or a typed
/// failure. `contexts` optionally carries the deployable context images
/// (attached by single-job flows like `cgra-tool schedule --cache`; sweeps
/// skip them — regenerating from the schedule is deterministic).
struct ScheduleArtifact {
  std::string key;  ///< content-addressed cache key (sched/job_key.hpp)
  bool ok = false;
  Schedule schedule;             ///< valid when ok
  ScheduleStats stats;           ///< wallTimeMs zeroed (volatile)
  SchedulerMetrics metrics;      ///< counters only; timings zeroed
  ScheduleFailure failure;       ///< valid when !ok
  std::uint64_t fingerprint = 0; ///< Schedule::fingerprint() when ok
  std::optional<ContextImages> contexts;

  /// Canonical JSON document (sorted keys, no volatile fields): two
  /// artifacts of the same result dump byte-identically.
  json::Value toJson() const;

  /// Parses and *verifies* a document: format tag, field shape, and — for
  /// successful artifacts — that the stored fingerprint matches the
  /// deserialized schedule's recomputed one, so silent corruption of any
  /// schedule field is detected at load time. Throws cgra::Error.
  static ScheduleArtifact fromJson(const json::Value& doc);

  /// Builds an artifact from a finished scheduling run. Volatile fields
  /// (wall times) are zeroed so artifacts are content-deterministic.
  static ScheduleArtifact fromReport(std::string key,
                                     const ScheduleReport& report);
};

/// Bit-exact Schedule serialization (every field of sched/schedule.hpp).
/// Exposed separately for tests and external tooling.
json::Value scheduleToJson(const Schedule& sched);
Schedule scheduleFromJson(const json::Value& doc);

}  // namespace cgra::artifact
