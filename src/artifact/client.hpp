// Minimal blocking JSONL client for the compile service (DESIGN.md §12).
//
// One JsonlClient is one connection: connect over a unix domain socket or
// loopback TCP, `sendLine` newline-framed requests, `recvLine` newline-framed
// responses. The framing is line-oriented on both sides, so a client may
// pipeline any number of requests before reading — the service answers in
// request order per connection. Used by `cgra-tool serve --connect` and the
// bench_serve load generator; not thread-safe (one connection per thread).
#pragma once

#include <cstdint>
#include <string>

namespace cgra::artifact {

class JsonlClient {
public:
  JsonlClient() = default;
  ~JsonlClient();

  JsonlClient(const JsonlClient&) = delete;
  JsonlClient& operator=(const JsonlClient&) = delete;
  JsonlClient(JsonlClient&& other) noexcept;
  JsonlClient& operator=(JsonlClient&& other) noexcept;

  /// Connects to the unix domain socket at `path`. Throws cgra::Error.
  static JsonlClient connectUnix(const std::string& path);

  /// Connects to 127.0.0.1:`port`. Throws cgra::Error.
  static JsonlClient connectTcp(std::uint16_t port);

  bool connected() const { return fd_ >= 0; }

  /// Writes one request line (a trailing newline is appended when missing).
  /// Throws cgra::Error when the connection broke.
  void sendLine(const std::string& line);

  /// Reads the next response line into `line` (newline stripped). Returns
  /// false on EOF — the server closed the connection.
  bool recvLine(std::string& line);

  /// Half-closes the write side: the server answers everything sent so far,
  /// then closes, which `recvLine` observes as EOF.
  void shutdownWrite();

  void close();

private:
  explicit JsonlClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string rbuf_;
};

}  // namespace cgra::artifact
