#include "json/json.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

namespace cgra::json {

// ---------------------------------------------------------------------------
// Object

Value& Object::operator[](const std::string& key) {
  for (auto& [k, v] : entries_)
    if (k == key) return v;
  entries_.emplace_back(key, Value());
  return entries_.back().second;
}

const Value& Object::at(const std::string& key) const {
  if (const Value* v = find(key)) return *v;
  throw Error("JSON object has no key \"" + key + '"');
}

bool Object::contains(const std::string& key) const {
  return find(key) != nullptr;
}

const Value* Object::find(const std::string& key) const {
  for (const auto& [k, v] : entries_)
    if (k == key) return &v;
  return nullptr;
}

Value& Object::append(std::string key) {
  entries_.emplace_back(std::move(key), Value());
  return entries_.back().second;
}

// ---------------------------------------------------------------------------
// Value accessors

bool Value::asBool() const {
  if (!isBool()) throw Error("JSON value is not a bool");
  return std::get<bool>(data_);
}

std::int64_t Value::asInt() const {
  if (isInt()) return std::get<std::int64_t>(data_);
  if (isDouble()) {
    const double d = std::get<double>(data_);
    if (d == std::floor(d)) return static_cast<std::int64_t>(d);
  }
  throw Error("JSON value is not an integer");
}

double Value::asDouble() const {
  if (isDouble()) return std::get<double>(data_);
  if (isInt()) return static_cast<double>(std::get<std::int64_t>(data_));
  throw Error("JSON value is not a number");
}

const std::string& Value::asString() const {
  if (!isString()) throw Error("JSON value is not a string");
  return std::get<std::string>(data_);
}

const Array& Value::asArray() const {
  if (!isArray()) throw Error("JSON value is not an array");
  return std::get<Array>(data_);
}

Array& Value::asArray() {
  if (!isArray()) throw Error("JSON value is not an array");
  return std::get<Array>(data_);
}

const Object& Value::asObject() const {
  if (!isObject()) throw Error("JSON value is not an object");
  return std::get<Object>(data_);
}

Object& Value::asObject() {
  if (!isObject()) throw Error("JSON value is not an object");
  return std::get<Object>(data_);
}

// ---------------------------------------------------------------------------
// Serialization

namespace {

void appendEscaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void appendIndent(std::string& out, int indent, int depth) {
  if (indent > 0) {
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
  }
}

}  // namespace

void Value::dumpTo(std::string& out, int indent, int depth) const {
  if (isNull()) {
    out += "null";
  } else if (isBool()) {
    out += asBool() ? "true" : "false";
  } else if (isInt()) {
    out += std::to_string(std::get<std::int64_t>(data_));
  } else if (isDouble()) {
    std::ostringstream os;
    os << std::get<double>(data_);
    out += os.str();
  } else if (isString()) {
    appendEscaped(out, asString());
  } else if (isArray()) {
    const Array& arr = asArray();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i) out.push_back(',');
      appendIndent(out, indent, depth + 1);
      arr[i].dumpTo(out, indent, depth + 1);
    }
    appendIndent(out, indent, depth);
    out.push_back(']');
  } else {
    const Object& obj = asObject();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [k, v] : obj) {
      if (!first) out.push_back(',');
      first = false;
      appendIndent(out, indent, depth + 1);
      appendEscaped(out, k);
      out += indent > 0 ? ": " : ":";
      v.dumpTo(out, indent, depth + 1);
    }
    appendIndent(out, indent, depth);
    out.push_back('}');
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

class Parser {
public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parseDocument() {
    Value v = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& msg) const {
    int line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream os;
    os << "JSON parse error at line " << line << ", column " << col << ": "
       << msg;
    throw Error(os.str());
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + '\'');
    }
  }

  bool consumeKeyword(const char* kw) {
    std::size_t len = std::char_traits<char>::length(kw);
    if (text_.compare(pos_, len, kw) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Value parseValue() {
    skipWs();
    char c = peek();
    switch (c) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return Value(parseString());
      case 't':
        if (consumeKeyword("true")) return Value(true);
        fail("invalid keyword");
      case 'f':
        if (consumeKeyword("false")) return Value(false);
        fail("invalid keyword");
      case 'n':
        if (consumeKeyword("null")) return Value(nullptr);
        fail("invalid keyword");
      default: return parseNumber();
    }
  }

  Value parseObject() {
    expect('{');
    Object obj;
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      // append: skip operator[]'s duplicate scan — quadratic on wide
      // objects, and real documents do not carry duplicate keys.
      obj.append(std::move(key)) = parseValue();
      skipWs();
      char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return Value(std::move(obj));
  }

  Value parseArray() {
    expect('[');
    Array arr;
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parseValue());
      skipWs();
      char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return Value(std::move(arr));
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      // Bulk-copy the run up to the next quote, escape, or control char —
      // strings are almost always plain, and per-char appends dominate the
      // profile otherwise.
      std::size_t run = pos_;
      while (run < text_.size()) {
        const unsigned char c = static_cast<unsigned char>(text_[run]);
        if (c == '"' || c == '\\' || c < 0x20) break;
        ++run;
      }
      if (run > pos_) {
        out.append(text_, pos_, run - pos_);
        pos_ = run;
      }
      char c = take();
      if (c == '"') break;
      if (c == '\\') {
        char esc = take();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9')
                code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code += static_cast<unsigned>(h - 'A' + 10);
              else
                fail("invalid \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogate pairs are rare in
            // composition files and rejected explicitly).
            if (code >= 0xD800 && code <= 0xDFFF)
              fail("surrogate pairs are not supported");
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: fail("invalid escape sequence");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Value parseNumber() {
    const std::size_t start = pos_;
    const auto digit = [](char c) { return c >= '0' && c <= '9'; };
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && digit(text_[pos_])) ++pos_;
    bool isInt = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      isInt = false;
      ++pos_;
      while (pos_ < text_.size() && digit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      isInt = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && digit(text_[pos_])) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
      fail("invalid number");
    const std::string_view sv(text_.data() + start, pos_ - start);
    if (isInt) {
      std::int64_t v = 0;
      auto [p, ec] = std::from_chars(sv.data(), sv.data() + sv.size(), v);
      if (ec == std::errc() && p == sv.data() + sv.size()) return Value(v);
    }
    double d = 0;
    auto [p, ec] = std::from_chars(sv.data(), sv.data() + sv.size(), d);
    if (ec != std::errc() || p != sv.data() + sv.size()) fail("invalid number");
    return Value(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parseDocument(); }

Value parseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open JSON file: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return parse(os.str());
}

void writeFile(const std::string& path, const Value& value) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot write JSON file: " + path);
  out << value.dump() << '\n';
}

Value sortKeys(const Value& value) {
  if (value.isArray()) {
    Array out;
    out.reserve(value.asArray().size());
    for (const Value& v : value.asArray()) out.push_back(sortKeys(v));
    return out;
  }
  if (value.isObject()) {
    std::vector<std::pair<std::string, const Value*>> entries;
    for (const auto& [k, v] : value.asObject()) entries.emplace_back(k, &v);
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    Object out;
    for (const auto& [k, v] : entries) out[k] = sortKeys(*v);
    return out;
  }
  return value;
}

}  // namespace cgra::json
