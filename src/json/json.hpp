// Self-contained JSON value model, parser and serializer.
//
// The paper's architecture generator consumes JSON descriptions (Fig. 8/9):
// a composition file referencing per-PE descriptor files and an interconnect
// file. This module is the substrate for those descriptions; it supports the
// full JSON grammar (objects, arrays, strings with escapes, numbers, bools,
// null) and preserves object key insertion order so serialized compositions
// stay human-diffable.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "support/assert.hpp"

namespace cgra::json {

class Value;

/// Order-preserving string→Value map (JSON object).
class Object {
public:
  Value& operator[](const std::string& key);
  const Value& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  /// Returns nullptr when the key is absent.
  const Value* find(const std::string& key) const;
  /// Appends without the duplicate-key scan of operator[]. The parser's
  /// fast path: correct only when the caller knows `key` is not present
  /// yet (on a duplicate, find/at keep answering the first entry and dump
  /// emits both).
  Value& append(std::string key);
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }
  auto begin() { return entries_.begin(); }
  auto end() { return entries_.end(); }

private:
  std::vector<std::pair<std::string, Value>> entries_;
};

using Array = std::vector<Value>;

/// A JSON value: null, bool, number (double or int64), string, array, object.
class Value {
public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}
  Value(std::int64_t i) : data_(i) {}
  Value(std::uint64_t i) : data_(static_cast<std::int64_t>(i)) {}
  Value(double d) : data_(d) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  bool isNull() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool isBool() const { return std::holds_alternative<bool>(data_); }
  bool isInt() const { return std::holds_alternative<std::int64_t>(data_); }
  bool isDouble() const { return std::holds_alternative<double>(data_); }
  bool isNumber() const { return isInt() || isDouble(); }
  bool isString() const { return std::holds_alternative<std::string>(data_); }
  bool isArray() const { return std::holds_alternative<Array>(data_); }
  bool isObject() const { return std::holds_alternative<Object>(data_); }

  bool asBool() const;
  std::int64_t asInt() const;
  double asDouble() const;
  const std::string& asString() const;
  const Array& asArray() const;
  Array& asArray();
  const Object& asObject() const;
  Object& asObject();

  /// Serializes with 2-space indentation.
  std::string dump(int indent = 2) const;

private:
  void dumpTo(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      data_;
};

/// Parses a complete JSON document; throws cgra::Error with line/column on
/// malformed input or trailing garbage.
Value parse(const std::string& text);

/// Reads and parses a JSON file; throws cgra::Error when unreadable.
Value parseFile(const std::string& path);

/// Writes a value to a file with trailing newline.
void writeFile(const std::string& path, const Value& value);

/// Deep copy with object keys sorted lexicographically at every level
/// (arrays keep their order). Metrics/counter exports route through this so
/// reports are byte-stable regardless of insertion order at the call sites.
Value sortKeys(const Value& value);

}  // namespace cgra::json
