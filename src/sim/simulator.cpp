#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace cgra {

Simulator::Simulator(const Composition& comp, const Schedule& sched)
    : comp_(&comp), sched_(&sched) {
  // Reject structurally corrupt schedules up front (e.g. bit-flipped
  // context images): every reference must stay in range so execution can
  // never touch memory out of bounds.
  auto check = [](bool ok, const char* what) {
    if (!ok) throw Error(std::string("simulator: corrupt schedule: ") + what);
  };
  check(sched.vregsPerPE.size() == comp.numPEs(),
        "per-PE register counts missing");
  startAt_.assign(sched.length, {});
  cboxAt_.assign(sched.length, nullptr);
  branchAt_.assign(sched.length, nullptr);
  for (const ScheduledOp& op : sched.ops) {
    check(op.pe < comp.numPEs(), "op on invalid PE");
    check(op.duration >= 1, "zero-duration op");
    check(op.start < sched.length && op.lastCycle() < sched.length,
          "op outside the context range");
    check(static_cast<unsigned>(op.op) < kNumOps, "invalid opcode");
    check(!op.writesDest || op.destVreg < sched.vregsPerPE[op.pe],
          "destination register out of range");
    check(!op.pred || op.pred->slot < sched.cboxSlotsUsed,
          "predication slot out of range");
    for (const OperandSource& src : op.src) {
      if (src.kind == OperandSource::Kind::Own)
        check(src.vreg < sched.vregsPerPE[op.pe], "operand register range");
      if (src.kind == OperandSource::Kind::Route) {
        check(src.srcPE < comp.numPEs(), "route source PE range");
        check(src.vreg < sched.vregsPerPE[src.srcPE],
              "routed register range");
      }
    }
    startAt_[op.start].push_back(&op);
  }
  for (const CBoxOp& op : sched.cboxOps) {
    check(op.time < sched.length, "C-Box op outside the context range");
    check(!cboxAt_[op.time], "two C-Box ops in one context");
    check(op.writeSlot < sched.cboxSlotsUsed, "C-Box write slot range");
    for (const CBoxOp::Input& in : op.inputs)
      check(in.kind != CBoxOp::Input::Kind::Stored ||
                in.slot < sched.cboxSlotsUsed,
            "C-Box read slot range");
    cboxAt_[op.time] = &op;
  }
  for (const BranchOp& b : sched.branches) {
    check(b.time < sched.length, "branch outside the context range");
    check(b.target < sched.length, "branch target out of range");
    check(!b.conditional || b.pred.slot < sched.cboxSlotsUsed,
          "branch selection slot range");
    check(!branchAt_[b.time], "two branches in one context");
    branchAt_[b.time] = &b;
  }
  for (const LiveBinding& lb : sched.liveIns) {
    check(lb.pe < comp.numPEs(), "live-in PE range");
    check(lb.vreg < sched.vregsPerPE[lb.pe], "live-in register range");
  }
  for (const LiveBinding& lb : sched.liveOuts) {
    check(lb.pe < comp.numPEs(), "live-out PE range");
    check(lb.vreg < sched.vregsPerPE[lb.pe], "live-out register range");
  }
}

namespace {

/// An in-flight operation: result computed at issue, committed after the
/// remaining cycles elapse.
struct InFlight {
  const ScheduledOp* op;
  unsigned remaining;       ///< cycles until commit (1 = commits this cycle)
  bool suppressed;          ///< predicated off: no commit
  std::int32_t result = 0;  ///< RF write value (or DMA load result)
  bool status = false;      ///< comparison outcome
};

}  // namespace

SimResult Simulator::run(const std::map<VarId, std::int32_t>& liveIns,
                         HostMemory& heap, const SimOptions& opts) const {
  return runWindow(liveIns, heap, sched_->liveIns, sched_->liveOuts, 0,
                   sched_->length, opts);
}

SimResult Simulator::runWindow(const std::map<VarId, std::int32_t>& liveIns,
                               HostMemory& heap,
                               const std::vector<LiveBinding>& liveInBindings,
                               const std::vector<LiveBinding>& liveOutBindings,
                               unsigned startCcnt, unsigned endCcnt,
                               const SimOptions& opts) const {
  CGRA_ASSERT_MSG(startCcnt <= endCcnt && endCcnt <= sched_->length,
                  "invalid CCNT window");
  SimResult result;

  // Hardware counters (single null test per guard when disabled, the same
  // discipline as CGRA_TRACE). Reset here: every invocation starts fresh.
  SimCounters countersStorage;
  SimCounters* const ctr = opts.collectCounters ? &countersStorage : nullptr;
  // peState[p]: 0 idle, 1 scheduled NOP in flight, 2 busy. touched[p][r]:
  // vreg r of PE p has committed a write (for the regsTouched peak bound).
  std::vector<std::uint8_t> peState;
  std::vector<std::vector<std::uint8_t>> touched;
  if (ctr) {
    ctr->reset(comp_->numPEs(), sched_->length);
    peState.assign(comp_->numPEs(), 0);
    touched.resize(comp_->numPEs());
    for (PEId p = 0; p < comp_->numPEs(); ++p)
      touched[p].assign(std::max(1u, sched_->vregsPerPE[p]), 0);
  }

  // Register files (virtual registers) and condition memory.
  std::vector<std::vector<std::int32_t>> regs(comp_->numPEs());
  for (PEId p = 0; p < comp_->numPEs(); ++p)
    regs[p].assign(std::max(1u, sched_->vregsPerPE[p]), 0);
  std::vector<std::uint8_t> condMem(std::max(1u, sched_->cboxSlotsUsed), 0);

  // Live-in transfer (2 cycles per variable, Fig. 6). Protocol cycles, not
  // PE work: attributed to invocationCycles / liveInTransferCycles only.
  for (const LiveBinding& lb : liveInBindings) {
    const auto it = liveIns.find(lb.var);
    regs[lb.pe][lb.vreg] = it == liveIns.end() ? 0 : it->second;
    result.invocationCycles += kCyclesPerTransfer;
    if (ctr) ctr->liveInTransferCycles += kCyclesPerTransfer;
  }

  std::vector<InFlight> inflight;
  std::uint64_t cycles = 0;
  unsigned ccnt = startCcnt;

  // Debug aid: CGRA_TRACE=<pe> logs every register commit of that PE.
  const char* traceEnv = std::getenv("CGRA_TRACE");
  const int tracePe = traceEnv ? std::atoi(traceEnv) : -1;

  auto readOperand = [&](const OperandSource& src) -> std::int32_t {
    switch (src.kind) {
      case OperandSource::Kind::None: return 0;
      case OperandSource::Kind::Own:
        CGRA_UNREACHABLE("Own reads resolve through the op's own PE");
      case OperandSource::Kind::Route:
        return regs[src.srcPE][src.vreg];
      case OperandSource::Kind::Imm: return src.imm;
    }
    CGRA_UNREACHABLE("bad operand kind");
  };

  while (ccnt < endCcnt) {
    if (++cycles > opts.maxCycles)
      throw Error("simulator: cycle budget exceeded (runaway loop?)");

    // -- start of cycle: snapshot predication/branch reads --------------------
    auto readPred = [&](const PredRef& p) -> bool {
      return (condMem[p.slot] != 0) == p.polarity;
    };
    const BranchOp* branch = branchAt_[ccnt];
    const bool branchTaken =
        branch && (!branch->conditional || readPred(branch->pred));

    if (ctr) {
      ++ctr->contextExec[ccnt];
      if (branch) ++(branchTaken ? ctr->branchesTaken : ctr->branchesNotTaken);
    }

    // -- issue operations starting this context -------------------------------
    for (const ScheduledOp* op : startAt_[ccnt]) {
      InFlight fl{op, op->duration, false, 0, false};
      fl.suppressed = op->pred && !readPred(*op->pred);

      if (ctr) {
        PECounters& pc = ctr->perPE[op->pe];
        ++pc.opsIssued;
        ++pc.byClass[static_cast<unsigned>(opClassOf(op->op))];
        if (fl.suppressed) {
          ++pc.squashedOps;
          if (isMemoryOp(op->op)) ++ctr->dmaSuppressed;
        }
        // Operand fetches latch at issue, before the predication gate: an RF
        // read serves from the owning PE's file; a routed read additionally
        // crosses the srcPE→op.pe link.
        for (const OperandSource& src : op->src) {
          if (src.kind == OperandSource::Kind::Own) {
            ++pc.rfReads;
          } else if (src.kind == OperandSource::Kind::Route) {
            ++ctr->perPE[src.srcPE].rfReads;
            ++ctr->linkTransfers[static_cast<std::size_t>(src.srcPE) *
                                     ctr->numPEs +
                                 op->pe];
          }
        }
      }

      auto readSrc = [&](unsigned i) -> std::int32_t {
        const OperandSource& s = op->src[i];
        if (s.kind == OperandSource::Kind::Own) return regs[op->pe][s.vreg];
        return readOperand(s);
      };

      if (opts.collectEnergy) {
        result.energy += fl.suppressed ? defaultEnergy(Op::NOP)
                                       : comp_->pe(op->pe).impl(op->op).energy;
      }

      switch (op->op) {
        case Op::NOP: break;
        case Op::CONST:
          fl.result = op->src[0].imm;
          break;
        case Op::MOVE:
          fl.result = readSrc(0);
          break;
        case Op::DMA_LOAD: {
          if (!fl.suppressed) {
            fl.result = heap.load(readSrc(0), readSrc(1));
            ++result.dmaLoads;
          }
          break;
        }
        case Op::DMA_STORE: {
          if (!fl.suppressed) {
            heap.store(readSrc(0), readSrc(1), readSrc(2));
            ++result.dmaStores;
          }
          break;
        }
        default:
          if (producesStatus(op->op)) {
            fl.status = evalCompare(op->op, readSrc(0), readSrc(1));
          } else if (operandCount(op->op) == 1) {
            fl.result = evalArith(op->op, readSrc(0), 0);
          } else {
            fl.result = evalArith(op->op, readSrc(0), readSrc(1));
          }
      }
      inflight.push_back(fl);
    }

    if (ctr) {
      // busy/nop/idle: an op occupies its PE from issue through its commit
      // cycle inclusive; busy + nop + idle == runCycles for every PE.
      std::fill(peState.begin(), peState.end(), std::uint8_t{0});
      for (const InFlight& fl : inflight)
        peState[fl.op->pe] = std::max<std::uint8_t>(
            peState[fl.op->pe], fl.op->op == Op::NOP ? 1 : 2);
      for (PEId p = 0; p < ctr->numPEs; ++p) {
        PECounters& pc = ctr->perPE[p];
        if (peState[p] == 2)
          ++pc.busyCycles;
        else if (peState[p] == 1)
          ++pc.nopCycles;
        else
          ++pc.idleCycles;
      }
    }

    // -- status wire: comparisons in their last cycle --------------------------
    bool statusWire = false;
    bool statusValid = false;
    for (const InFlight& fl : inflight)
      if (fl.remaining == 1 && fl.op->emitsStatus) {
        CGRA_ASSERT_MSG(!statusValid, "two statuses in one cycle");
        statusWire = fl.status;
        statusValid = true;
      }

    // -- C-Box operation -------------------------------------------------------
    std::optional<std::pair<unsigned, bool>> condWrite;
    if (const CBoxOp* cb = cboxAt_[ccnt]) {
      if (ctr) {
        ++ctr->cboxSlotWrites;
        if (cb->inputs.size() > 1) ++ctr->cboxCombines;
      }
      bool value = cb->logic == CBoxOp::Logic::And;
      bool first = true;
      for (const CBoxOp::Input& in : cb->inputs) {
        bool v;
        if (in.kind == CBoxOp::Input::Kind::Status) {
          CGRA_ASSERT_MSG(statusValid, "C-Box consumes absent status");
          v = statusWire;
          if (ctr) ++ctr->cboxStatusReads;
        } else {
          v = condMem[in.slot] != 0;
        }
        if (!in.polarity) v = !v;
        if (first) {
          value = v;
          first = false;
        } else {
          value = cb->logic == CBoxOp::Logic::Or ? (value || v) : (value && v);
        }
      }
      condWrite = {cb->writeSlot, value};
    }

    // -- end of cycle: commits --------------------------------------------------
    for (auto it = inflight.begin(); it != inflight.end();) {
      if (--it->remaining == 0) {
        const ScheduledOp* op = it->op;
        if (op->writesDest && !it->suppressed) {
          regs[op->pe][op->destVreg] = it->result;
          if (ctr) {
            PECounters& pc = ctr->perPE[op->pe];
            ++pc.rfWrites;
            if (!touched[op->pe][op->destVreg]) {
              touched[op->pe][op->destVreg] = 1;
              ++pc.regsTouched;
            }
          }
          if (tracePe == static_cast<int>(op->pe))
            std::fprintf(stderr, "cycle %llu ccnt %u: PE%u r%u <= %d (%s)\n",
                         static_cast<unsigned long long>(cycles), ccnt, op->pe,
                         op->destVreg, it->result, opName(op->op));
        }
        it = inflight.erase(it);
      } else {
        ++it;
      }
    }
    if (condWrite) condMem[condWrite->first] = condWrite->second ? 1 : 0;

    ccnt = branchTaken ? branch->target : ccnt + 1;
  }

  CGRA_ASSERT_MSG(inflight.empty(), "operation still in flight at run end");

  result.runCycles = cycles;

  // Live-out transfer back to the host (Fig. 6).
  for (const LiveBinding& lb : liveOutBindings) {
    result.liveOuts[lb.var] = regs[lb.pe][lb.vreg];
    result.invocationCycles += kCyclesPerTransfer;
    if (ctr) ctr->liveOutTransferCycles += kCyclesPerTransfer;
  }
  result.invocationCycles += cycles + kInvocationOverhead;

  if (ctr) {
    ctr->cycles = cycles;
    ctr->overheadCycles = kInvocationOverhead;
    ctr->dmaLoads = result.dmaLoads;
    ctr->dmaStores = result.dmaStores;
    result.counters = std::move(countersStorage);
  }
  return result;
}

}  // namespace cgra
