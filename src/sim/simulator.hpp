// Cycle-accurate simulator of a generated CGRA executing one schedule.
//
// Substitutes the paper's FPGA execution (DESIGN.md records the
// substitution): the quantities the evaluation reports — executed context
// counts (Tables II/III), invocation overhead (Fig. 6's receive/run/send
// sequence) — are architectural, so a cycle-accurate software model measures
// the same numbers.
//
// Timing model (matching the scheduler's contract):
//  * operands are latched at an operation's first cycle from the RF state at
//    the start of that cycle (own RF or a source PE's output port);
//  * results commit at the end of the operation's last cycle;
//  * a comparison drives the status wire during its last cycle; the C-Box
//    operation of that cycle may consume it and writes its condition slot at
//    end of cycle;
//  * predication (the single outPE wire) and branch selection read condition
//    slots as of the start of the cycle;
//  * a predicated-off operation commits nothing (no RF write, no heap
//    access) — this is what makes speculative loop dry-passes and untaken
//    if-arms safe (§V-B, §V-D);
//  * the CCU increments the CCNT unless the context carries a branch whose
//    condition reads true.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "host/memory.hpp"
#include "sched/schedule.hpp"
#include "sim/counters.hpp"

namespace cgra {

/// Simulation options.
struct SimOptions {
  std::uint64_t maxCycles = 100'000'000;  ///< runaway-loop guard
  bool collectEnergy = true;
  /// Populate SimResult.counters (hardware-counter model). Off by default:
  /// the interpreter hot loop then pays only a null-pointer test per guard.
  bool collectCounters = false;
};

/// Result of one CGRA invocation.
struct SimResult {
  std::map<VarId, std::int32_t> liveOuts;  ///< final live-out variable values
  std::uint64_t runCycles = 0;             ///< contexts executed
  std::uint64_t invocationCycles = 0;      ///< incl. live-in/out transfers
  std::uint64_t dmaLoads = 0;
  std::uint64_t dmaStores = 0;
  double energy = 0.0;  ///< summed per-op energy (relative units);
                        ///< exactly 0 when SimOptions.collectEnergy is off
  /// Hardware counters of this invocation; engaged only when
  /// SimOptions.collectCounters is set. Reset per invocation: a runWindow
  /// call never accumulates into a previous call's counters.
  std::optional<SimCounters> counters;
};

/// Executes a schedule on a composition.
class Simulator {
public:
  /// Per the invocation protocol (Fig. 6): each local-variable transfer
  /// (receive and send) takes 2 cycles, plus fixed start/finish handshaking.
  static constexpr unsigned kCyclesPerTransfer = 2;
  static constexpr unsigned kInvocationOverhead = 4;

  Simulator(const Composition& comp, const Schedule& sched);

  /// Runs one invocation. `liveIns` maps live-in variables to their values
  /// (missing entries default to 0). Throws cgra::Error on heap faults from
  /// *committed* accesses or when maxCycles is exceeded.
  SimResult run(const std::map<VarId, std::int32_t>& liveIns, HostMemory& heap,
                const SimOptions& opts = {}) const;

  /// Runs one invocation of a kernel *window* inside a packed context
  /// memory (§IV-A.3: the host transfers the initial CCNT): execution
  /// starts at `startCcnt`, ends when the CCNT reaches `endCcnt`, and the
  /// live-in/out bindings of the placement override the schedule's own.
  SimResult runWindow(const std::map<VarId, std::int32_t>& liveIns,
                      HostMemory& heap,
                      const std::vector<LiveBinding>& liveInBindings,
                      const std::vector<LiveBinding>& liveOutBindings,
                      unsigned startCcnt, unsigned endCcnt,
                      const SimOptions& opts = {}) const;

private:
  const Composition* comp_;
  const Schedule* sched_;

  // Per-context dispatch tables built once.
  std::vector<std::vector<const ScheduledOp*>> startAt_;
  std::vector<const CBoxOp*> cboxAt_;
  std::vector<const BranchOp*> branchAt_;
};

}  // namespace cgra
