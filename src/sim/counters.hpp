// Cycle-accurate hardware counters of one CGRA invocation.
//
// The simulator substitutes the paper's FPGA execution; these counters
// substitute the performance-counter block such an FPGA build would carry.
// They answer the evaluation's own questions (per-PE utilization behind the
// Tables II/III cycle counts, the §IV inhomogeneity argument, predication
// squash rates of the §V-B/V-D speculation scheme) *at runtime*, where the
// static schedule shape alone is misleading: a loop body occupying 10 of
// 200 contexts dominates execution once it iterates 400 times.
//
// Attribution rules (tests pin these; see DESIGN.md §9):
//  * A PE cycle is `busy` when a non-NOP operation is in flight on it,
//    `nop` when a scheduled NOP is in flight, `idle` otherwise;
//    busy + nop + idle == SimResult.runCycles for every PE.
//  * Operand fetches (RF reads, link transfers) are counted at issue,
//    predicated or not — the hardware latches operands before the
//    predication gate suppresses the commit.
//  * RF writes are counted at commit only (a squashed op writes nothing).
//  * Live-in/live-out transfers belong to the invocation protocol (Fig. 6):
//    they count toward liveIn/liveOutTransferCycles — which feed
//    SimResult.invocationCycles — and never toward PE busy cycles or
//    rfReads/rfWrites.
//  * contextExec[c] counts executions of context c; a windowed run
//    (runWindow) touches only [startCcnt, endCcnt).
//
// Collection is gated by SimOptions.collectCounters: when off, the
// interpreter hot loop sees a single null-pointer test per guard (the same
// discipline as the scheduler's CGRA_TRACE sink) and SimResult.counters
// stays empty.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "arch/interconnect.hpp"
#include "arch/operation.hpp"
#include "json/json.hpp"

namespace cgra {

/// Coarse operation classes for per-PE histograms.
enum class OpClass : std::uint8_t {
  Nop,      ///< scheduled NOP
  Move,     ///< routing MOVE
  Const,    ///< CONST materialization
  Alu,      ///< arithmetic / logic / shift
  Mul,      ///< IMUL
  Compare,  ///< status-producing IF*
  Memory,   ///< DMA_LOAD / DMA_STORE
};

inline constexpr unsigned kNumOpClasses =
    static_cast<unsigned>(OpClass::Memory) + 1;

OpClass opClassOf(Op op);
const char* opClassName(OpClass c);

/// Counters of one PE over one invocation.
struct PECounters {
  std::uint64_t busyCycles = 0;   ///< non-NOP op in flight
  std::uint64_t nopCycles = 0;    ///< scheduled NOP in flight
  std::uint64_t idleCycles = 0;   ///< nothing in flight
  std::uint64_t opsIssued = 0;    ///< operations issued (incl. squashed)
  std::uint64_t squashedOps = 0;  ///< issued but predicated off
  std::uint64_t rfReads = 0;      ///< RF reads served by this PE's file
                                  ///< (own operands + routed-out reads)
  std::uint64_t rfWrites = 0;     ///< committed register writes
  std::uint64_t regsTouched = 0;  ///< distinct vregs written (peak live
                                  ///< register upper bound)
  std::array<std::uint64_t, kNumOpClasses> byClass{};  ///< ops issued / class
};

/// Full hardware-counter set of one invocation (SimResult.counters).
struct SimCounters {
  std::vector<PECounters> perPE;
  /// Directed link traffic: transfers[from * numPEs + to] counts routed
  /// operand reads over the from→to link.
  std::vector<std::uint64_t> linkTransfers;
  unsigned numPEs = 0;
  /// Per-context execution counts (the loop trip profile): contextExec[c]
  /// increments every cycle the CCNT sits on context c.
  std::vector<std::uint64_t> contextExec;
  std::uint64_t cycles = 0;  ///< window cycles (== SimResult.runCycles)

  // C-Box pressure.
  std::uint64_t cboxSlotWrites = 0;   ///< condition-slot writes
  std::uint64_t cboxCombines = 0;     ///< combine-network evaluations (2-input)
  std::uint64_t cboxStatusReads = 0;  ///< live status-wire consumptions

  // CCU.
  std::uint64_t branchesTaken = 0;
  std::uint64_t branchesNotTaken = 0;

  // DMA breakdown.
  std::uint64_t dmaLoads = 0;
  std::uint64_t dmaStores = 0;
  std::uint64_t dmaSuppressed = 0;  ///< DMA ops issued but predicated off

  // Invocation protocol (Fig. 6) — never attributed to PE busy cycles.
  std::uint64_t liveInTransferCycles = 0;
  std::uint64_t liveOutTransferCycles = 0;
  std::uint64_t overheadCycles = 0;  ///< fixed start/finish handshake

  /// Clears everything and sizes the per-PE / per-link / per-context arrays.
  void reset(unsigned pes, unsigned scheduleLength);

  std::uint64_t totalSquashed() const;
  std::uint64_t totalLinkTransfers() const;
  std::uint64_t transfersOn(PEId from, PEId to) const;

  /// Nested JSON object with lexicographically sorted keys at every level
  /// (byte-stable across runs and thread counts for identical executions).
  json::Value toJson() const;
};

}  // namespace cgra
