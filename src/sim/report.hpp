// Combined observability report: static schedule quality (sched/metrics)
// merged with the runtime hardware counters of a simulated invocation
// (sim/counters) into one exportable artifact.
//
// This is the accessor layer tools and benches consume instead of doing raw
// SimResult field math (check_deprecated_schedule.sh enforces that): the
// derived quantities — achieved utilization, squash rate, cycles per op —
// have exactly one definition here, so every surface (cgra-tool stats/sim,
// sweep aggregates, BENCH_*.json) reports the same numbers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sched/metrics.hpp"
#include "sim/simulator.hpp"

namespace cgra {

/// Static + (optional) runtime report of one schedule on one composition.
struct Report {
  ScheduleQuality quality;  ///< static schedule-shape metrics

  /// Runtime section; meaningful only when `hasRuntime`.
  bool hasRuntime = false;
  std::uint64_t runCycles = 0;
  std::uint64_t invocationCycles = 0;
  std::uint64_t dmaLoads = 0;
  std::uint64_t dmaStores = 0;
  double energy = 0.0;
  std::optional<SimCounters> counters;  ///< engaged when collectCounters was on

  /// Mean per-PE utilization promised by the schedule shape.
  double staticUtilization() const { return quality.staticUtilization; }

  /// Mean per-PE utilization *achieved* by the run: total busy cycles over
  /// numPEs × runCycles. Falls back to staticUtilization() without counters.
  double achievedUtilization() const;

  /// Achieved utilization of one PE (busy / runCycles); static without
  /// counters.
  double peUtilization(PEId pe) const;

  /// Fraction of issued ops whose commit was predicated off (0 without
  /// counters).
  double squashRate() const;

  /// Mean run cycles per executed (non-squashed) operation; 0 without
  /// counters or when nothing executed.
  double cyclesPerOp() const;

  /// Nested JSON ({"schedule": ..., "runtime": ...}) with sorted keys at
  /// every level — byte-stable for identical inputs.
  json::Value toJson() const;

  /// Per-PE CSV table (header + one row per PE); runtime columns are 0 when
  /// the report is static-only.
  std::string toCsv() const;
};

/// Builds a report. `stats`/`sim` may be null: `stats` contributes fused-op
/// counts, `sim` the runtime section (with counters when the run collected
/// them).
Report makeReport(const Schedule& sched, const Composition& comp,
                  const ScheduleStats* stats = nullptr,
                  const SimResult* sim = nullptr);

/// ASCII per-PE×time utilization heatmap. One row per PE, contexts bucketed
/// into at most `maxWidth` columns; cell intensity is the busy fraction of
/// the bucket. When `runtime` is given, contexts are weighted by their
/// execution counts, so a hot loop body glows even if it is a sliver of the
/// context memory.
std::string utilizationHeatmap(const Schedule& sched, const Composition& comp,
                               const SimCounters* runtime = nullptr,
                               unsigned maxWidth = 64);

}  // namespace cgra
