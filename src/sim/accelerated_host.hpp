// Host/CGRA co-execution: the last steps of the paper's synthesis flow
// (Fig. 1: "Patch original bytecode sequence" → "Execution of the bytecode
// sequence on the CGRA").
//
// An application is assembled from stages that share one local-variable
// frame: bytecode stages run on the AMIDAR-like token machine, kernel stages
// are synthesized for the CGRA (unroll → CDFG → schedule → contexts) and
// replaced in the assembled bytecode by a single INVOKE_CGRA instruction.
// When the machine reaches the patched instruction it forwards execution to
// the CGRA: live-in locals are transferred (2 cycles each, Fig. 6), the run
// executes on the cycle-accurate simulator, live-outs are written back, and
// the host resumes. The host is idle during the run (§III), so total cycles
// are simply additive.
//
// Stage functions must agree on local indices for the values they share
// (build them from a common schema; see examples/accelerated_app.cpp).
#pragma once

#include <optional>
#include <variant>

#include "ctx/multi.hpp"
#include "host/token_machine.hpp"
#include "kir/kir.hpp"
#include "sched/scheduler.hpp"

namespace cgra {

/// One application stage: host bytecode or an accelerated kernel.
struct HostStage {
  const kir::Function* fn = nullptr;
};
struct CgraStage {
  unsigned kernelId = 0;
};
using Stage = std::variant<HostStage, CgraStage>;

/// Result of one accelerated application run.
struct AcceleratedRunResult {
  std::vector<std::int32_t> locals;
  std::uint64_t totalCycles = 0;
  std::uint64_t hostCycles = 0;      ///< bytecode execution
  std::uint64_t cgraCycles = 0;      ///< CGRA runs including transfers
  std::uint64_t cgraInvocations = 0;
  std::uint64_t hostBytecodes = 0;
};

/// Assembles and executes patched applications against one composition.
class AcceleratedHost {
public:
  explicit AcceleratedHost(Composition comp, TokenCostModel costs = {},
                           SchedulerOptions schedOpts = {});

  /// Synthesizes a kernel for the CGRA (optional partial unrolling, as in
  /// the paper's evaluation). Returns the accelerator id used by CgraStage.
  unsigned addKernel(const kir::Function& kernel, unsigned unrollFactor = 2);

  /// Contexts occupied by the packed context memory holding all registered
  /// kernels (§IV-A.3: "the context memories can potentially hold multiple
  /// schedules"); each invocation transfers the kernel's start CCNT.
  unsigned contextsUsed() const;

  /// The packed placement record of a kernel (start CCNT, window length,
  /// physical live bindings).
  const SchedulePlacement& placement(unsigned kernelId) const;

  /// Assembles the stages into a single patched bytecode function
  /// (concatenated host stages with branch-target fixups; kernel stages
  /// become one INVOKE_CGRA each) — inspectable via disassemble().
  BytecodeFunction assemble(const std::vector<Stage>& stages,
                            const std::string& name = "app") const;

  /// Runs the assembled application.
  AcceleratedRunResult run(const std::vector<Stage>& stages,
                           std::vector<std::int32_t> initialLocals,
                           HostMemory& heap) const;

  const Composition& composition() const { return comp_; }

private:
  struct Kernel {
    Schedule schedule;  ///< virtual registers (pre-packing)
    unsigned numLocals = 0;
    std::vector<VarId> localToVar;
  };

  Composition comp_;
  TokenMachine machine_;
  SchedulerOptions schedOpts_;
  std::vector<Kernel> kernels_;
  PackedSchedules packed_;  ///< rebuilt on every addKernel
};

}  // namespace cgra
