#include "sim/counters.hpp"

#include <numeric>

#include "support/assert.hpp"

namespace cgra {

OpClass opClassOf(Op op) {
  switch (op) {
    case Op::NOP: return OpClass::Nop;
    case Op::MOVE: return OpClass::Move;
    case Op::CONST: return OpClass::Const;
    case Op::IMUL: return OpClass::Mul;
    case Op::DMA_LOAD:
    case Op::DMA_STORE: return OpClass::Memory;
    default:
      return producesStatus(op) ? OpClass::Compare : OpClass::Alu;
  }
}

const char* opClassName(OpClass c) {
  switch (c) {
    case OpClass::Nop: return "nop";
    case OpClass::Move: return "move";
    case OpClass::Const: return "const";
    case OpClass::Alu: return "alu";
    case OpClass::Mul: return "mul";
    case OpClass::Compare: return "compare";
    case OpClass::Memory: return "memory";
  }
  CGRA_UNREACHABLE("bad op class");
}

void SimCounters::reset(unsigned pes, unsigned scheduleLength) {
  *this = SimCounters{};
  numPEs = pes;
  perPE.assign(pes, PECounters{});
  linkTransfers.assign(static_cast<std::size_t>(pes) * pes, 0);
  contextExec.assign(scheduleLength, 0);
}

std::uint64_t SimCounters::totalSquashed() const {
  std::uint64_t total = 0;
  for (const PECounters& pe : perPE) total += pe.squashedOps;
  return total;
}

std::uint64_t SimCounters::totalLinkTransfers() const {
  return std::accumulate(linkTransfers.begin(), linkTransfers.end(),
                         std::uint64_t{0});
}

std::uint64_t SimCounters::transfersOn(PEId from, PEId to) const {
  CGRA_ASSERT(from < numPEs && to < numPEs);
  return linkTransfers[static_cast<std::size_t>(from) * numPEs + to];
}

json::Value SimCounters::toJson() const {
  json::Object o;
  o["cycles"] = cycles;
  o["cboxSlotWrites"] = cboxSlotWrites;
  o["cboxCombines"] = cboxCombines;
  o["cboxStatusReads"] = cboxStatusReads;
  o["branchesTaken"] = branchesTaken;
  o["branchesNotTaken"] = branchesNotTaken;
  o["dmaLoads"] = dmaLoads;
  o["dmaStores"] = dmaStores;
  o["dmaSuppressed"] = dmaSuppressed;
  o["liveInTransferCycles"] = liveInTransferCycles;
  o["liveOutTransferCycles"] = liveOutTransferCycles;
  o["overheadCycles"] = overheadCycles;
  o["squashedOps"] = totalSquashed();

  json::Array pes;
  for (PEId p = 0; p < perPE.size(); ++p) {
    const PECounters& pc = perPE[p];
    json::Object e;
    e["pe"] = static_cast<std::int64_t>(p);
    e["busyCycles"] = pc.busyCycles;
    e["nopCycles"] = pc.nopCycles;
    e["idleCycles"] = pc.idleCycles;
    e["opsIssued"] = pc.opsIssued;
    e["squashedOps"] = pc.squashedOps;
    e["rfReads"] = pc.rfReads;
    e["rfWrites"] = pc.rfWrites;
    e["regsTouched"] = pc.regsTouched;
    json::Object classes;
    for (unsigned c = 0; c < kNumOpClasses; ++c)
      if (pc.byClass[c] > 0)
        classes[opClassName(static_cast<OpClass>(c))] = pc.byClass[c];
    e["opClasses"] = std::move(classes);
    pes.emplace_back(std::move(e));
  }
  o["perPE"] = std::move(pes);

  // Only links that carried traffic, keyed "from->to" (keys sort stably).
  json::Object links;
  for (PEId from = 0; from < numPEs; ++from)
    for (PEId to = 0; to < numPEs; ++to)
      if (const std::uint64_t n = transfersOn(from, to); n > 0)
        links[std::to_string(from) + "->" + std::to_string(to)] = n;
  o["linkTransfers"] = std::move(links);

  json::Array trips;
  trips.reserve(contextExec.size());
  for (std::uint64_t n : contextExec)
    trips.emplace_back(static_cast<std::int64_t>(n));
  o["contextExec"] = std::move(trips);

  return json::sortKeys(json::Value(std::move(o)));
}

}  // namespace cgra
