#include "sim/report.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace cgra {

double Report::achievedUtilization() const {
  if (!counters || counters->cycles == 0 || counters->numPEs == 0)
    return staticUtilization();
  std::uint64_t busy = 0;
  for (const PECounters& pc : counters->perPE) busy += pc.busyCycles;
  return static_cast<double>(busy) /
         (static_cast<double>(counters->numPEs) * counters->cycles);
}

double Report::peUtilization(PEId pe) const {
  if (counters && counters->cycles > 0 && pe < counters->perPE.size())
    return static_cast<double>(counters->perPE[pe].busyCycles) /
           counters->cycles;
  return pe < quality.perPE.size() ? quality.perPE[pe].utilization : 0.0;
}

double Report::squashRate() const {
  if (!counters) return 0.0;
  std::uint64_t issued = 0;
  for (const PECounters& pc : counters->perPE) issued += pc.opsIssued;
  return issued > 0
             ? static_cast<double>(counters->totalSquashed()) / issued
             : 0.0;
}

double Report::cyclesPerOp() const {
  if (!counters) return 0.0;
  std::uint64_t issued = 0;
  for (const PECounters& pc : counters->perPE) issued += pc.opsIssued;
  const std::uint64_t executed = issued - counters->totalSquashed();
  return executed > 0 ? static_cast<double>(counters->cycles) / executed : 0.0;
}

json::Value Report::toJson() const {
  json::Object o;
  o["schedule"] = quality.toJson();
  if (hasRuntime) {
    json::Object rt;
    rt["runCycles"] = runCycles;
    rt["invocationCycles"] = invocationCycles;
    rt["dmaLoads"] = dmaLoads;
    rt["dmaStores"] = dmaStores;
    rt["energy"] = energy;
    rt["achievedUtilization"] = achievedUtilization();
    rt["squashRate"] = squashRate();
    rt["cyclesPerOp"] = cyclesPerOp();
    if (counters) rt["counters"] = counters->toJson();
    o["runtime"] = std::move(rt);
  }
  return json::sortKeys(json::Value(std::move(o)));
}

std::string Report::toCsv() const {
  std::string out =
      "pe,staticBusy,staticUtil,slack,opsScheduled,inserted,"
      "runBusy,runNop,runIdle,runOpsIssued,squashed,rfReads,rfWrites,"
      "achievedUtil\n";
  char line[256];
  for (const PEQuality& pq : quality.perPE) {
    const PECounters* pc =
        counters && pq.pe < counters->perPE.size() ? &counters->perPE[pq.pe]
                                                   : nullptr;
    std::snprintf(
        line, sizeof line,
        "%u,%u,%.4f,%u,%u,%u,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.4f\n",
        pq.pe, pq.busyCycles, pq.utilization, pq.slack, pq.opsIssued,
        pq.insertedOps,
        static_cast<unsigned long long>(pc ? pc->busyCycles : 0),
        static_cast<unsigned long long>(pc ? pc->nopCycles : 0),
        static_cast<unsigned long long>(pc ? pc->idleCycles : 0),
        static_cast<unsigned long long>(pc ? pc->opsIssued : 0),
        static_cast<unsigned long long>(pc ? pc->squashedOps : 0),
        static_cast<unsigned long long>(pc ? pc->rfReads : 0),
        static_cast<unsigned long long>(pc ? pc->rfWrites : 0),
        peUtilization(pq.pe));
    out += line;
  }
  return out;
}

Report makeReport(const Schedule& sched, const Composition& comp,
                  const ScheduleStats* stats, const SimResult* sim) {
  Report r;
  r.quality = computeScheduleQuality(sched, comp, stats);
  if (sim) {
    r.hasRuntime = true;
    r.runCycles = sim->runCycles;
    r.invocationCycles = sim->invocationCycles;
    r.dmaLoads = sim->dmaLoads;
    r.dmaStores = sim->dmaStores;
    r.energy = sim->energy;
    r.counters = sim->counters;
  }
  return r;
}

std::string utilizationHeatmap(const Schedule& sched, const Composition& comp,
                               const SimCounters* runtime, unsigned maxWidth) {
  // 10-level intensity ramp; a space means no busy cycle in the bucket.
  static const char kRamp[] = " .:-=+*#%@";
  if (sched.length == 0 || comp.numPEs() == 0 || maxWidth == 0)
    return "(empty schedule)\n";

  // Static busy mask per PE per context.
  std::vector<std::vector<std::uint8_t>> busy(comp.numPEs());
  for (auto& b : busy) b.assign(sched.length, 0);
  for (const ScheduledOp& op : sched.ops)
    for (unsigned c = op.start; c <= op.lastCycle(); ++c) busy[op.pe][c] = 1;

  // Context weight: execution count when runtime counters are given (a
  // never-executed context then contributes nothing), 1 otherwise.
  auto weightOf = [&](unsigned c) -> std::uint64_t {
    if (!runtime) return 1;
    return c < runtime->contextExec.size() ? runtime->contextExec[c] : 0;
  };

  const unsigned cols = std::min(maxWidth, sched.length);
  std::string out;
  out += runtime ? "Achieved per-PE utilization (execution-weighted"
                 : "Static per-PE utilization (schedule shape";
  out += ", " + std::to_string(sched.length) + " contexts in " +
         std::to_string(cols) + " columns; ' '=0% '@'=100%)\n";
  for (PEId p = 0; p < comp.numPEs(); ++p) {
    char label[16];
    std::snprintf(label, sizeof label, "PE%-3u|", p);
    out += label;
    for (unsigned col = 0; col < cols; ++col) {
      // Bucket [lo, hi) of contexts rendered by this column.
      const unsigned lo =
          static_cast<unsigned>(static_cast<std::uint64_t>(col) *
                                sched.length / cols);
      const unsigned hi =
          static_cast<unsigned>(static_cast<std::uint64_t>(col + 1) *
                                sched.length / cols);
      std::uint64_t busyW = 0, totalW = 0;
      for (unsigned c = lo; c < hi; ++c) {
        const std::uint64_t w = weightOf(c);
        totalW += w;
        if (busy[p][c]) busyW += w;
      }
      if (totalW == 0 || busyW == 0) {
        out += ' ';
      } else {
        const double f = static_cast<double>(busyW) / totalW;
        const unsigned level = std::min<unsigned>(
            9, 1 + static_cast<unsigned>(f * 8.999));
        out += kRamp[level];
      }
    }
    out += "|\n";
  }
  return out;
}

}  // namespace cgra
