#include "sim/accelerated_host.hpp"

#include "kir/lower_bytecode.hpp"
#include "kir/lower_cdfg.hpp"
#include "kir/passes.hpp"
#include "sim/simulator.hpp"

namespace cgra {

AcceleratedHost::AcceleratedHost(Composition comp, TokenCostModel costs,
                                 SchedulerOptions schedOpts)
    : comp_(std::move(comp)), machine_(costs), schedOpts_(schedOpts) {}

unsigned AcceleratedHost::addKernel(const kir::Function& kernel,
                                    unsigned unrollFactor) {
  const kir::Function prepared =
      unrollFactor >= 2 ? kir::unrollLoops(kernel, unrollFactor, true)
                        : kernel;
  kir::LoweringResult lowered = kir::lowerToCdfg(prepared);
  const Scheduler scheduler(comp_, schedOpts_);
  Kernel k;
  k.schedule = scheduler.schedule(ScheduleRequest(lowered.graph)).orThrow().schedule;
  k.numLocals = static_cast<unsigned>(kernel.numLocals());
  k.localToVar = std::move(lowered.localToVar);
  kernels_.push_back(std::move(k));

  // Re-pack all kernels into the shared context memory (§IV-A.3).
  std::vector<Schedule> all;
  all.reserve(kernels_.size());
  for (const Kernel& kern : kernels_) all.push_back(kern.schedule);
  packed_ = packSchedules(all, comp_);
  return static_cast<unsigned>(kernels_.size() - 1);
}

unsigned AcceleratedHost::contextsUsed() const { return packed_.merged.length; }

const SchedulePlacement& AcceleratedHost::placement(unsigned kernelId) const {
  CGRA_ASSERT(kernelId < packed_.placements.size());
  return packed_.placements[kernelId];
}

BytecodeFunction AcceleratedHost::assemble(const std::vector<Stage>& stages,
                                           const std::string& name) const {
  BytecodeFunction out;
  out.name = name;
  for (const Stage& stage : stages) {
    if (const auto* host = std::get_if<HostStage>(&stage)) {
      CGRA_ASSERT(host->fn != nullptr);
      const BytecodeFunction part = kir::lowerToBytecode(*host->fn);
      const std::int32_t offset = static_cast<std::int32_t>(out.code.size());
      out.numLocals = std::max<unsigned>(out.numLocals, part.numLocals);
      for (BcInstr in : part.code) {
        if (in.op == Bc::HALT) continue;  // stages fall through
        switch (in.op) {
          case Bc::GOTO:
          case Bc::IF_ICMPEQ:
          case Bc::IF_ICMPNE:
          case Bc::IF_ICMPLT:
          case Bc::IF_ICMPGE:
          case Bc::IF_ICMPGT:
          case Bc::IF_ICMPLE:
            in.arg += offset;  // branch targets are stage-relative
            break;
          default:
            break;
        }
        out.code.push_back(in);
      }
      // A stage's trailing HALT may be branched to; those targets now point
      // at the next stage's first instruction, which is exactly fall-through.
    } else {
      const auto& cgra = std::get<CgraStage>(stage);
      if (cgra.kernelId >= kernels_.size())
        throw Error("assemble: unknown kernel id " +
                    std::to_string(cgra.kernelId));
      out.numLocals = std::max(out.numLocals, kernels_[cgra.kernelId].numLocals);
      out.code.push_back(
          BcInstr{Bc::INVOKE_CGRA, static_cast<std::int32_t>(cgra.kernelId)});
    }
  }
  out.code.push_back(BcInstr{Bc::HALT, 0});
  return out;
}

AcceleratedRunResult AcceleratedHost::run(
    const std::vector<Stage>& stages, std::vector<std::int32_t> initialLocals,
    HostMemory& heap) const {
  const BytecodeFunction app = assemble(stages);

  AcceleratedRunResult result;
  const Simulator sim(comp_, packed_.merged);
  AcceleratorHook hook = [&](std::int32_t id, std::vector<std::int32_t>& locals,
                             HostMemory& hookHeap) -> std::uint64_t {
    const Kernel& k = kernels_[static_cast<std::size_t>(id)];
    const SchedulePlacement& pl = packed_.placements[static_cast<std::size_t>(id)];
    std::map<VarId, std::int32_t> liveIns;
    for (const LiveBinding& lb : pl.liveIns) {
      // CGRA variables map 1:1 onto the kernel's locals.
      for (unsigned l = 0; l < k.numLocals; ++l)
        if (k.localToVar[l] == lb.var) liveIns[lb.var] = locals[l];
    }
    // Transfer the initial CCNT and run the kernel's window (§IV-A.3).
    const SimResult r =
        sim.runWindow(liveIns, hookHeap, pl.liveIns, pl.liveOuts, pl.startCcnt,
                      pl.startCcnt + pl.length);
    for (const auto& [var, value] : r.liveOuts)
      for (unsigned l = 0; l < k.numLocals; ++l)
        if (k.localToVar[l] == var) locals[l] = value;
    ++result.cgraInvocations;
    result.cgraCycles += r.invocationCycles;
    return r.invocationCycles;
  };

  const TokenRunResult host =
      machine_.run(app, std::move(initialLocals), heap, 100'000'000, hook);
  result.locals = host.locals;
  result.totalCycles = host.cycles;
  result.hostCycles = host.cycles - result.cgraCycles;
  result.hostBytecodes = host.bytecodes;
  return result;
}

}  // namespace cgra
