// Automatic composition synthesis — the paper's stated future work (§VII):
// "we want to develop a tool that automatically analyzes a set of problems
// from an application domain and generates a matching CGRA composition."
//
// Given the CDFGs of an application domain (with importance weights), the
// synthesizer:
//  1. profiles them: operation histogram, memory-operation pressure and an
//     ILP estimate (total work / critical path) that bounds the useful PE
//     count;
//  2. enumerates candidate compositions — array sizes around the ILP
//     estimate × interconnect styles (mesh, ring+chords, dense) × operator
//     allocations (multipliers only on as many PEs as the MUL fraction
//     warrants, DMA ports sized from memory pressure, capped at 4 per the
//     architecture);
//  3. schedules every kernel on every candidate and scores candidates by
//     weighted schedule length plus an area penalty from the calibrated
//     resource model (the paper's own iterate-by-experience flow, §I,
//     automated);
//  4. returns the best candidate with the full ranking for inspection.
#pragma once

#include <string>
#include <vector>

#include "arch/composition.hpp"
#include "cdfg/cdfg.hpp"

namespace cgra {

/// One kernel of the application domain.
struct DomainKernel {
  const Cdfg* graph = nullptr;
  double weight = 1.0;  ///< relative importance (e.g. profiled execution share)
  std::string name;
};

struct SynthesisOptions {
  unsigned minPEs = 4;
  unsigned maxPEs = 16;
  unsigned regfileSize = 64;
  unsigned contextMemoryLength = 1024;
  unsigned cboxSlots = 32;
  /// Score = cycles-term × (1 + areaWeight × normalized-LUT-area).
  double areaWeight = 0.25;
  /// Worker threads for the candidate × kernel scheduling sweep; 0 selects
  /// the hardware concurrency. The ranking is thread-count independent.
  unsigned threads = 0;
};

/// Profile of the domain (step 1).
struct DomainProfile {
  std::vector<std::size_t> opHistogram;  ///< indexed by Op
  double mulFraction = 0.0;              ///< IMUL share of operation nodes
  double memFraction = 0.0;              ///< DMA share of operation nodes
  double avgIlp = 0.0;                   ///< work / critical-path estimate
  unsigned suggestedPEs = 0;
};

/// One evaluated candidate (step 3).
struct CandidateResult {
  std::string name;
  double score = 0.0;
  double weightedLength = 0.0;  ///< Σ weight × schedule length
  double lutArea = 0.0;
  bool feasible = false;
  std::string failure;  ///< first scheduling error when infeasible
};

/// Synthesis outcome: the winning composition plus the ranking.
struct SynthesisReport {
  Composition best;
  DomainProfile profile;
  std::vector<CandidateResult> candidates;  ///< sorted by ascending score
};

/// Profiles a domain without generating candidates (exposed for tests).
DomainProfile profileDomain(const std::vector<DomainKernel>& kernels);

/// Runs the full synthesis; throws cgra::Error when no candidate can map
/// every kernel.
SynthesisReport synthesizeComposition(const std::vector<DomainKernel>& kernels,
                                      const SynthesisOptions& opts = {});

}  // namespace cgra
