#include "synth/synthesis.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <optional>

#include "arch/resource_model.hpp"
#include "sched/sweep.hpp"

namespace cgra {

namespace {

/// Candidate interconnect styles (step 2).
enum class Style { Mesh, RingChords, Dense };

const char* styleName(Style s) {
  switch (s) {
    case Style::Mesh: return "mesh";
    case Style::RingChords: return "ring+chords";
    case Style::Dense: return "dense";
  }
  return "?";
}

Interconnect buildInterconnect(Style style, unsigned n) {
  Interconnect ic(n);
  switch (style) {
    case Style::Mesh: {
      // Most-square factorization.
      unsigned rows = 1;
      for (unsigned r = 1; r * r <= n; ++r)
        if (n % r == 0) rows = r;
      const unsigned cols = n / rows;
      auto id = [cols](unsigned r, unsigned c) { return r * cols + c; };
      for (unsigned r = 0; r < rows; ++r)
        for (unsigned c = 0; c < cols; ++c) {
          if (c + 1 < cols) ic.addBidirectional(id(r, c), id(r, c + 1));
          if (r + 1 < rows) ic.addBidirectional(id(r, c), id(r + 1, c));
        }
      // Degenerate 1×n meshes still need a return path.
      if (rows == 1 && n > 2) ic.addBidirectional(0, n - 1);
      break;
    }
    case Style::RingChords:
      for (PEId i = 0; i < n; ++i) ic.addBidirectional(i, (i + 1) % n);
      for (PEId i = 0; i + n / 2 < n; ++i) ic.addBidirectional(i, i + n / 2);
      break;
    case Style::Dense:
      for (PEId a = 0; a < n; ++a)
        for (PEId b = a + 1; b < n; ++b)
          if ((a + b) % 2 == 0 || b == a + 1) ic.addBidirectional(a, b);
      break;
  }
  ic.computeShortestPaths();
  return ic;
}

/// Spreads `count` marked PEs evenly over [0, n).
std::vector<PEId> spread(unsigned count, unsigned n) {
  std::vector<PEId> out;
  for (unsigned i = 0; i < count; ++i)
    out.push_back(static_cast<PEId>((i * n + n / 2) / std::max(1u, count)) %
                  n);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  // Collisions for tiny n: fill with the next free ids.
  for (PEId p = 0; out.size() < count && p < n; ++p)
    if (std::find(out.begin(), out.end(), p) == out.end()) out.push_back(p);
  return out;
}

}  // namespace

DomainProfile profileDomain(const std::vector<DomainKernel>& kernels) {
  DomainProfile prof;
  prof.opHistogram.assign(kNumOps, 0);
  std::size_t operations = 0;
  std::size_t muls = 0, mems = 0;
  double weightedIlp = 0.0, weightSum = 0.0;

  for (const DomainKernel& k : kernels) {
    CGRA_ASSERT(k.graph != nullptr);
    const Cdfg& g = *k.graph;
    double work = 0.0, critical = 1.0;
    const auto weights = g.longestPathWeights();
    for (NodeId id = 0; id < g.numNodes(); ++id) {
      const Node& n = g.node(id);
      if (n.kind != NodeKind::Operation) continue;
      ++operations;
      ++prof.opHistogram[static_cast<unsigned>(n.op)];
      if (n.op == Op::IMUL) ++muls;
      if (n.isMemory()) ++mems;
      work += defaultDuration(n.op);
      critical = std::max(critical, weights[id]);
    }
    weightedIlp += k.weight * (work / critical);
    weightSum += k.weight;
  }
  if (operations) {
    prof.mulFraction = static_cast<double>(muls) / operations;
    prof.memFraction = static_cast<double>(mems) / operations;
  }
  prof.avgIlp = weightSum > 0 ? weightedIlp / weightSum : 1.0;
  prof.suggestedPEs = static_cast<unsigned>(std::lround(prof.avgIlp + 1.0));
  return prof;
}

SynthesisReport synthesizeComposition(const std::vector<DomainKernel>& kernels,
                                      const SynthesisOptions& opts) {
  if (kernels.empty()) throw Error("synthesizeComposition: no kernels");
  const DomainProfile prof = profileDomain(kernels);

  // Candidate PE counts around the ILP estimate, clamped to the range.
  std::vector<unsigned> sizes;
  for (int delta : {-2, 0, 2, 4}) {
    const int n = static_cast<int>(prof.suggestedPEs) + delta;
    const unsigned clamped = static_cast<unsigned>(
        std::clamp<int>(n, static_cast<int>(opts.minPEs),
                        static_cast<int>(opts.maxPEs)));
    if (std::find(sizes.begin(), sizes.end(), clamped) == sizes.end())
      sizes.push_back(clamped);
  }

  // Materialize every candidate first (construction can reject a topology),
  // then schedule all (candidate × kernel) pairs in one sweep. A deque keeps
  // composition addresses stable for the jobs' non-owning pointers.
  struct Candidate {
    CandidateResult result;
    Composition* comp = nullptr;         ///< null when construction failed
    std::size_t firstJob = 0;            ///< index of its first sweep job
  };
  std::deque<Composition> comps;
  std::vector<Candidate> cands;
  std::vector<SweepJob> jobs;
  for (unsigned n : sizes) {
    // Operator allocation: multipliers on ceil(mulFraction·n)+1 PEs, DMA
    // ports covering memory pressure (at least 1, at most 4 per §IV-A.1).
    const unsigned mulPEs = std::min(
        n, static_cast<unsigned>(std::ceil(prof.mulFraction * n)) + 1);
    const unsigned dmaPEs = std::clamp<unsigned>(
        static_cast<unsigned>(std::ceil(prof.memFraction * n)), 1, 4);

    for (Style style : {Style::Mesh, Style::RingChords, Style::Dense}) {
      const std::vector<PEId> dma = spread(dmaPEs, n);
      const std::vector<PEId> mul = spread(mulPEs, n);
      std::vector<PEDescriptor> pes;
      for (PEId p = 0; p < n; ++p) {
        const bool hasDma = std::find(dma.begin(), dma.end(), p) != dma.end();
        PEDescriptor pe = PEDescriptor::fullInteger(
            "synth" + std::to_string(p), opts.regfileSize, hasDma);
        if (std::find(mul.begin(), mul.end(), p) == mul.end())
          pe.removeOp(Op::IMUL);
        pes.push_back(std::move(pe));
      }
      const std::string name = std::to_string(n) + "pe-" + styleName(style) +
                               "-" + std::to_string(mulPEs) + "mul";
      Candidate cand;
      cand.result.name = name;
      try {
        comps.emplace_back(name, std::move(pes), buildInterconnect(style, n),
                           opts.contextMemoryLength, opts.cboxSlots);
        cand.comp = &comps.back();
        cand.firstJob = jobs.size();
        for (const DomainKernel& k : kernels)
          jobs.push_back(SweepJob{cand.comp, k.graph,
                                  name + "@" + k.name, SchedulerOptions{}});
      } catch (const Error& e) {
        cand.result.failure = e.what();
      }
      cands.push_back(std::move(cand));
    }
  }

  SweepOptions sweepOpts;
  sweepOpts.threads = opts.threads;
  sweepOpts.keepSchedules = false;  // ranking only needs lengths
  const SweepReport sweep = runSweep(jobs, sweepOpts);

  std::vector<CandidateResult> evaluated;
  Composition* best = nullptr;
  double bestScore = 0.0;
  for (Candidate& cand : cands) {
    if (cand.comp != nullptr) {
      double weightedLength = 0.0;
      std::string failure;
      for (std::size_t k = 0; k < kernels.size(); ++k) {
        const SweepJobResult& r = sweep.results[cand.firstJob + k];
        if (!r.ok) {
          failure = r.error;
          break;
        }
        weightedLength += kernels[k].weight * r.stats.contextsUsed;
      }
      if (failure.empty()) {
        const ResourceEstimate est = estimateResources(*cand.comp);
        cand.result.feasible = true;
        cand.result.weightedLength = weightedLength;
        cand.result.lutArea = est.lutLogic;
        // Normalize area against a 16-PE dense upper bound (~20k LUTs).
        cand.result.score = weightedLength *
                            (1.0 + opts.areaWeight * est.lutLogic / 20000.0);
        if (best == nullptr || cand.result.score < bestScore) {
          best = cand.comp;
          bestScore = cand.result.score;
        }
      } else {
        cand.result.failure = std::move(failure);
      }
    }
    evaluated.push_back(std::move(cand.result));
  }

  if (!best)
    throw Error("synthesizeComposition: no feasible candidate for the domain");
  std::stable_sort(evaluated.begin(), evaluated.end(),
                   [](const CandidateResult& a, const CandidateResult& b) {
                     if (a.feasible != b.feasible) return a.feasible;
                     return a.score < b.score;
                   });
  return SynthesisReport{std::move(*best), prof, std::move(evaluated)};
}

}  // namespace cgra
