// Control and Data Flow Graph — the scheduler's intermediate representation
// (paper §V-A).
//
// Shape of the IR:
//  * Nodes are either ALU operations (including comparisons, whose result is
//    a status bit for the C-Box, and DMA accesses) or predicated writes
//    (pWRITE, §V-B) committing a value to a local variable's home register.
//    Variable *reads* are not nodes: they appear as Operand::variable()
//    references on consuming nodes — the "read fused into every succeeding
//    node" form of §V-E.
//  * Dependency edges are typed: Flow (value availability), Anti (read
//    before overwrite), Output (write ordering), Control (condition must be
//    available before a predicated commit). Loop-carried dependencies are
//    implicit in the variable home-slot mechanism and recoverable for
//    rendering (Fig. 11 style).
//  * Conditions form a conjunction tree (CondId): every condition is
//    parent ∧ literal where the literal is a comparison node's status with
//    a polarity. This mirrors the C-Box, which can combine exactly one new
//    status per cycle with one stored condition (§V-H).
//  * Loops form a tree (LoopId 0 is the whole kernel). Each real loop names
//    its controlling comparison node and the polarity under which execution
//    continues, plus the path condition guarding loop entry. Loop execution
//    uses speculation: the body always runs, commits are predicated on
//    continue-condition, and the final iteration is a "dry pass" that
//    commits nothing (§V-B/V-C).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/operation.hpp"
#include "support/assert.hpp"

namespace cgra {

using NodeId = std::uint32_t;
using VarId = std::uint32_t;
using LoopId = std::uint32_t;
using CondId = std::uint32_t;

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);
inline constexpr CondId kCondTrue = 0;   ///< the empty conjunction
inline constexpr LoopId kRootLoop = 0;   ///< the whole kernel "loop"

/// An input of a node: another node's result, a local variable's current
/// committed value, or an immediate constant.
class Operand {
public:
  enum class Kind { Node, Variable, Immediate };

  static Operand node(NodeId id) { return Operand(Kind::Node, id, 0); }
  static Operand variable(VarId id) { return Operand(Kind::Variable, id, 0); }
  static Operand immediate(std::int32_t v) {
    return Operand(Kind::Immediate, 0, v);
  }

  Kind kind() const { return kind_; }
  NodeId nodeId() const {
    CGRA_ASSERT(kind_ == Kind::Node);
    return id_;
  }
  VarId varId() const {
    CGRA_ASSERT(kind_ == Kind::Variable);
    return id_;
  }
  std::int32_t imm() const {
    CGRA_ASSERT(kind_ == Kind::Immediate);
    return imm_;
  }

  bool operator==(const Operand&) const = default;

private:
  Operand(Kind k, std::uint32_t id, std::int32_t imm)
      : kind_(k), id_(id), imm_(imm) {}

  Kind kind_;
  std::uint32_t id_;
  std::int32_t imm_;
};

/// Node category.
enum class NodeKind : std::uint8_t {
  Operation,  ///< ALU op / comparison / DMA access
  PWrite,     ///< predicated commit of operand 0 into a variable's home slot
};

/// One CDFG node.
struct Node {
  NodeKind kind = NodeKind::Operation;
  Op op = Op::NOP;                 ///< for Operation nodes
  VarId var = 0;                   ///< for PWrite nodes: target variable
  std::vector<Operand> operands;   ///< data inputs in ALU order
  CondId cond = kCondTrue;         ///< commit/execution condition
  LoopId loop = kRootLoop;         ///< innermost owning loop
  std::string label;               ///< debug name ("i<n", "x=", ...)

  bool isPWrite() const { return kind == NodeKind::PWrite; }
  bool isStatusProducer() const {
    return kind == NodeKind::Operation && producesStatus(op);
  }
  bool isMemory() const {
    return kind == NodeKind::Operation && isMemoryOp(op);
  }
};

/// Dependency edge category (scheduling constraint between two nodes).
enum class DepKind : std::uint8_t {
  Flow,     ///< to must start after from finishes (value availability)
  Anti,     ///< to (a write) must start no earlier than from (a read)
  Output,   ///< write-after-write ordering on the same variable
  Control,  ///< to commits under a condition derived from from's status
};

struct Edge {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  DepKind kind = DepKind::Flow;
};

/// A local variable of the kernel (paper §V-D).
struct Variable {
  std::string name;
  bool liveIn = false;   ///< transferred from the host before the run
  bool liveOut = false;  ///< written back to the host after the run
  std::int32_t initialValue = 0;  ///< host-side value at invocation
};

/// One condition: parent ∧ (status of `statusNode` == `polarity`).
/// CondId 0 is TRUE (no parent, no literal).
struct Condition {
  CondId parent = kCondTrue;
  NodeId statusNode = kNoNode;
  bool polarity = true;
};

/// One loop. Loop 0 is the pseudo-loop covering the whole kernel.
struct Loop {
  LoopId parent = kRootLoop;
  NodeId controllingNode = kNoNode;  ///< comparison producing the condition
  bool continueWhen = true;          ///< continue while status == continueWhen
  CondId entryCond = kCondTrue;      ///< path condition guarding loop entry
  CondId bodyCond = kCondTrue;       ///< entryCond ∧ continue literal
  std::string label;
};

/// The complete graph. Built by cdfg::Builder or the KIR lowering; validated
/// before scheduling.
class Cdfg {
public:
  // -- construction ---------------------------------------------------------
  NodeId addNode(Node node);
  void addEdge(NodeId from, NodeId to, DepKind kind);
  VarId addVariable(Variable var);
  /// Interns parent ∧ literal; returns an existing id when already present.
  CondId makeCondition(CondId parent, NodeId statusNode, bool polarity);
  LoopId addLoop(Loop loop);

  // -- access ---------------------------------------------------------------
  std::size_t numNodes() const { return nodes_.size(); }
  std::size_t numVariables() const { return vars_.size(); }
  std::size_t numLoops() const { return loops_.size(); }
  std::size_t numConditions() const { return conds_.size(); }

  const Node& node(NodeId id) const;
  Node& node(NodeId id);
  const Variable& variable(VarId id) const;
  const Loop& loop(LoopId id) const;
  Loop& loop(LoopId id);
  const Condition& condition(CondId id) const;
  const std::vector<Edge>& edges() const { return edges_; }

  /// Incoming / outgoing dependency edges of a node.
  const std::vector<Edge>& inEdges(NodeId id) const;
  const std::vector<Edge>& outEdges(NodeId id) const;

  /// Loops from `l` up to (excluding) the root, innermost first.
  std::vector<LoopId> loopAncestry(LoopId l) const;
  /// True when `inner` is `outer` or nested (transitively) inside it.
  bool loopContains(LoopId outer, LoopId inner) const;
  /// Nesting depth (root = 0).
  unsigned loopDepth(LoopId l) const;
  /// Direct children of a loop.
  std::vector<LoopId> loopChildren(LoopId l) const;

  /// All literals of a condition, outermost first.
  std::vector<std::pair<NodeId, bool>> conditionLiterals(CondId c) const;
  /// True when `outer`'s conjunction is a prefix of `inner`'s.
  bool conditionImplies(CondId inner, CondId outer) const;

  /// True when some node inside loop `l` (or nested deeper) pWRITEs `var`.
  bool varWrittenInLoop(VarId var, LoopId l) const;

  // -- analyses -------------------------------------------------------------
  /// Longest-path weight to any sink (the list scheduler's priority, §V-F).
  /// Flow edges weigh the producer's default duration; other edges weigh 0.
  std::vector<double> longestPathWeights() const;

  /// Nodes with no incoming dependency edges.
  std::vector<NodeId> rootNodes() const;

  /// Checks structural invariants; throws cgra::Error on violation:
  /// operand references in range, acyclic dependency graph, loop tree well
  /// formed, conditions reference status producers, pWRITE targets exist,
  /// every loop's controlling node inside the loop, node conditions
  /// consistent with loop body conditions.
  void validate() const;

  /// GraphViz rendering in the style of Fig. 11 (loops as clusters, control
  /// edges dashed red, loop-carried variable dependencies with weight 1).
  std::string toDot(const std::string& title = "cdfg") const;

private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<Edge>> in_, out_;
  std::vector<Variable> vars_;
  std::vector<Condition> conds_{Condition{}};  // index 0 = TRUE
  std::vector<Loop> loops_{Loop{}};            // index 0 = root
};

}  // namespace cgra
