#include "cdfg/cdfg.hpp"

#include <algorithm>
#include <functional>

#include "support/dot.hpp"

namespace cgra {

NodeId Cdfg::addNode(Node node) {
  nodes_.push_back(std::move(node));
  in_.emplace_back();
  out_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Cdfg::addEdge(NodeId from, NodeId to, DepKind kind) {
  CGRA_ASSERT(from < nodes_.size() && to < nodes_.size());
  // Duplicate edges of the same kind are harmless but bloat analyses.
  for (const Edge& e : out_[from])
    if (e.to == to && e.kind == kind) return;
  const Edge e{from, to, kind};
  edges_.push_back(e);
  out_[from].push_back(e);
  in_[to].push_back(e);
}

VarId Cdfg::addVariable(Variable var) {
  vars_.push_back(std::move(var));
  return static_cast<VarId>(vars_.size() - 1);
}

CondId Cdfg::makeCondition(CondId parent, NodeId statusNode, bool polarity) {
  CGRA_ASSERT(parent < conds_.size());
  CGRA_ASSERT(statusNode < nodes_.size());
  for (CondId c = 1; c < conds_.size(); ++c)
    if (conds_[c].parent == parent && conds_[c].statusNode == statusNode &&
        conds_[c].polarity == polarity)
      return c;
  conds_.push_back(Condition{parent, statusNode, polarity});
  return static_cast<CondId>(conds_.size() - 1);
}

LoopId Cdfg::addLoop(Loop loop) {
  CGRA_ASSERT(loop.parent < loops_.size());
  loops_.push_back(std::move(loop));
  return static_cast<LoopId>(loops_.size() - 1);
}

const Node& Cdfg::node(NodeId id) const {
  CGRA_ASSERT(id < nodes_.size());
  return nodes_[id];
}

Node& Cdfg::node(NodeId id) {
  CGRA_ASSERT(id < nodes_.size());
  return nodes_[id];
}

const Variable& Cdfg::variable(VarId id) const {
  CGRA_ASSERT(id < vars_.size());
  return vars_[id];
}

const Loop& Cdfg::loop(LoopId id) const {
  CGRA_ASSERT(id < loops_.size());
  return loops_[id];
}

Loop& Cdfg::loop(LoopId id) {
  CGRA_ASSERT(id < loops_.size());
  return loops_[id];
}

const Condition& Cdfg::condition(CondId id) const {
  CGRA_ASSERT(id < conds_.size());
  return conds_[id];
}

const std::vector<Edge>& Cdfg::inEdges(NodeId id) const {
  CGRA_ASSERT(id < in_.size());
  return in_[id];
}

const std::vector<Edge>& Cdfg::outEdges(NodeId id) const {
  CGRA_ASSERT(id < out_.size());
  return out_[id];
}

std::vector<LoopId> Cdfg::loopAncestry(LoopId l) const {
  std::vector<LoopId> out;
  while (l != kRootLoop) {
    out.push_back(l);
    l = loops_[l].parent;
  }
  return out;
}

bool Cdfg::loopContains(LoopId outer, LoopId inner) const {
  while (true) {
    if (inner == outer) return true;
    if (inner == kRootLoop) return false;
    inner = loops_[inner].parent;
  }
}

unsigned Cdfg::loopDepth(LoopId l) const {
  unsigned d = 0;
  while (l != kRootLoop) {
    ++d;
    l = loops_[l].parent;
  }
  return d;
}

std::vector<LoopId> Cdfg::loopChildren(LoopId l) const {
  std::vector<LoopId> out;
  for (LoopId c = 1; c < loops_.size(); ++c)
    if (loops_[c].parent == l) out.push_back(c);
  return out;
}

std::vector<std::pair<NodeId, bool>> Cdfg::conditionLiterals(CondId c) const {
  std::vector<std::pair<NodeId, bool>> lits;
  while (c != kCondTrue) {
    lits.emplace_back(conds_[c].statusNode, conds_[c].polarity);
    c = conds_[c].parent;
  }
  std::reverse(lits.begin(), lits.end());
  return lits;
}

bool Cdfg::conditionImplies(CondId inner, CondId outer) const {
  while (true) {
    if (inner == outer) return true;
    if (inner == kCondTrue) return false;
    inner = conds_[inner].parent;
  }
}

bool Cdfg::varWrittenInLoop(VarId var, LoopId l) const {
  for (const Node& n : nodes_)
    if (n.isPWrite() && n.var == var && loopContains(l, n.loop)) return true;
  return false;
}

std::vector<double> Cdfg::longestPathWeights() const {
  // Reverse topological accumulation over the (acyclic) dependency graph.
  const std::size_t n = nodes_.size();
  std::vector<double> weight(n, 0.0);
  std::vector<unsigned> outDeg(n, 0);
  for (NodeId i = 0; i < n; ++i)
    outDeg[i] = static_cast<unsigned>(out_[i].size());

  std::vector<NodeId> ready;
  for (NodeId i = 0; i < n; ++i) {
    if (outDeg[i] == 0) {
      ready.push_back(i);
      weight[i] = nodes_[i].kind == NodeKind::Operation
                      ? defaultDuration(nodes_[i].op)
                      : 1.0;
    }
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    ++processed;
    for (const Edge& e : in_[id]) {
      const double ownCost = nodes_[e.from].kind == NodeKind::Operation
                                 ? defaultDuration(nodes_[e.from].op)
                                 : 1.0;
      const double edgeCost = e.kind == DepKind::Flow ? ownCost : 0.0;
      weight[e.from] = std::max(weight[e.from], weight[id] + edgeCost);
      if (--outDeg[e.from] == 0) ready.push_back(e.from);
    }
  }
  CGRA_ASSERT_MSG(processed == n, "dependency graph contains a cycle");
  return weight;
}

std::vector<NodeId> Cdfg::rootNodes() const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < nodes_.size(); ++i)
    if (in_[i].empty()) out.push_back(i);
  return out;
}

void Cdfg::validate() const {
  // Operand and id ranges.
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.loop >= loops_.size())
      throw Error("node " + std::to_string(id) + ": loop id out of range");
    if (n.cond >= conds_.size())
      throw Error("node " + std::to_string(id) + ": condition id out of range");
    for (const Operand& o : n.operands) {
      if (o.kind() == Operand::Kind::Node && o.nodeId() >= nodes_.size())
        throw Error("node " + std::to_string(id) + ": operand node out of range");
      if (o.kind() == Operand::Kind::Variable && o.varId() >= vars_.size())
        throw Error("node " + std::to_string(id) + ": operand variable out of range");
      if (o.kind() == Operand::Kind::Node &&
          nodes_[o.nodeId()].kind == NodeKind::PWrite)
        throw Error("node " + std::to_string(id) +
                    ": pWRITE results must be read through the variable");
      if (o.kind() == Operand::Kind::Node &&
          nodes_[o.nodeId()].isStatusProducer())
        throw Error("node " + std::to_string(id) +
                    ": status bits are not data operands");
    }
    if (n.kind == NodeKind::PWrite) {
      if (n.var >= vars_.size())
        throw Error("pWRITE " + std::to_string(id) + ": variable out of range");
      if (n.operands.size() != 1)
        throw Error("pWRITE " + std::to_string(id) + ": needs exactly 1 operand");
    } else {
      if (n.op == Op::NOP || n.op == Op::MOVE || n.op == Op::CONST)
        throw Error("node " + std::to_string(id) +
                    ": NOP/MOVE/CONST are scheduler-internal, not CDFG ops");
      const unsigned want = operandCount(n.op);
      if (n.operands.size() != want)
        throw Error("node " + std::to_string(id) + " (" + opName(n.op) +
                    "): expected " + std::to_string(want) + " operands, got " +
                    std::to_string(n.operands.size()));
    }
  }

  // Conditions reference status producers.
  for (CondId c = 1; c < conds_.size(); ++c) {
    const Condition& cond = conds_[c];
    if (cond.statusNode >= nodes_.size() ||
        !nodes_[cond.statusNode].isStatusProducer())
      throw Error("condition " + std::to_string(c) +
                  ": literal is not a comparison node");
    if (cond.parent >= conds_.size() || (cond.parent >= c))
      throw Error("condition " + std::to_string(c) + ": bad parent");
  }

  // Loop tree: parents precede children; controlling node inside the loop;
  // body condition extends entry condition.
  for (LoopId l = 1; l < loops_.size(); ++l) {
    const Loop& lp = loops_[l];
    if (lp.parent >= l)
      throw Error("loop " + std::to_string(l) + ": bad parent");
    if (lp.controllingNode == kNoNode ||
        lp.controllingNode >= nodes_.size() ||
        !nodes_[lp.controllingNode].isStatusProducer())
      throw Error("loop " + std::to_string(l) +
                  ": controlling node must be a comparison");
    if (nodes_[lp.controllingNode].loop != l)
      throw Error("loop " + std::to_string(l) +
                  ": controlling node must belong to the loop");
    if (!conditionImplies(lp.bodyCond, lp.entryCond))
      throw Error("loop " + std::to_string(l) +
                  ": body condition must extend the entry condition");
  }

  // Every predicated node's condition literals must be producible before the
  // node: there must be a Control edge from each literal's status node.
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.cond == kCondTrue) continue;
    for (const auto& [statusNode, pol] : conditionLiterals(n.cond)) {
      (void)pol;
      const auto& ins = in_[id];
      const bool found =
          std::any_of(ins.begin(), ins.end(), [&](const Edge& e) {
            return e.kind == DepKind::Control && e.from == statusNode;
          });
      if (!found)
        throw Error("node " + std::to_string(id) +
                    ": missing Control edge from status node " +
                    std::to_string(statusNode));
    }
  }

  // Acyclicity (longestPathWeights asserts internally; surface as Error).
  try {
    (void)longestPathWeights();
  } catch (const InternalError&) {
    throw Error("dependency graph contains a cycle");
  }
}

std::string Cdfg::toDot(const std::string& title) const {
  DotWriter dot(title);
  // Group nodes by loop using clusters, innermost loops nested.
  std::function<void(LoopId)> emitLoop = [&](LoopId l) {
    if (l != kRootLoop)
      dot.beginCluster("loop" + std::to_string(l),
                       loops_[l].label.empty() ? "loop " + std::to_string(l)
                                               : loops_[l].label);
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      if (nodes_[id].loop != l) continue;
      const Node& n = nodes_[id];
      std::string label = n.isPWrite()
                              ? "pWRITE " + vars_[n.var].name
                              : std::string(opName(n.op));
      if (!n.label.empty()) label += "\\n" + n.label;
      dot.addNode("n" + std::to_string(id), label,
                  {{"shape", n.isPWrite() ? "box" : "ellipse"}});
    }
    for (LoopId c : loopChildren(l)) emitLoop(c);
    if (l != kRootLoop) dot.endCluster();
  };
  emitLoop(kRootLoop);

  for (const Edge& e : edges_) {
    std::map<std::string, std::string> attrs;
    switch (e.kind) {
      case DepKind::Flow: break;
      case DepKind::Anti:
        attrs["style"] = "dotted";
        attrs["color"] = "grey";
        break;
      case DepKind::Output:
        attrs["color"] = "grey";
        break;
      case DepKind::Control:
        attrs["style"] = "dashed";
        attrs["color"] = "red";
        break;
    }
    dot.addEdge("n" + std::to_string(e.from), "n" + std::to_string(e.to), attrs);
  }

  // Loop-carried variable dependencies (weight-1 edges in Fig. 11): a pWRITE
  // inside a loop feeding a variable operand of a node in the same loop that
  // is not ordered after it.
  for (NodeId w = 0; w < nodes_.size(); ++w) {
    if (!nodes_[w].isPWrite() || nodes_[w].loop == kRootLoop) continue;
    for (NodeId r = 0; r < nodes_.size(); ++r) {
      if (r == w || !loopContains(nodes_[w].loop, nodes_[r].loop)) continue;
      for (const Operand& o : nodes_[r].operands)
        if (o.kind() == Operand::Kind::Variable && o.varId() == nodes_[w].var) {
          const auto& ins = in_[r];
          const bool ordered =
              std::any_of(ins.begin(), ins.end(), [&](const Edge& e) {
                return e.from == w && e.kind == DepKind::Flow;
              });
          if (!ordered)
            dot.addEdge("n" + std::to_string(w), "n" + std::to_string(r),
                        {{"label", "1"}, {"constraint", "false"}});
        }
    }
  }
  return dot.str();
}

}  // namespace cgra
