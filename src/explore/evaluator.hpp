// Candidate evaluation for the explore loop (DESIGN.md §14).
//
// The Evaluator owns the bridge from genotypes to objective values: it
// materializes each previously unseen candidate, schedules the whole kernel
// set on it through the existing sweep engine (cache-aware via
// artifact::runCachedSweep when a store is attached, so a composition
// revisited across generations — or across explore runs sharing a cache
// directory — costs a lookup, not a schedule), and condenses the per-kernel
// results plus the analytical resource model into one `CandidateEval`.
//
// Two memo layers stack:
//  * an in-process memo keyed by Genotype::key() — a candidate proposed
//    twice in one run is summarized once and never re-materialized;
//  * the ArtifactStore underneath — cold/warm runs produce byte-identical
//    stable reports because cached sweeps are drop-in (DESIGN.md §10).
//
// Pareto semantics: minimize (areaLuts, weightedLength). Infeasible
// candidates (any kernel unschedulable) never dominate and never enter the
// front; ties on both axes leave both candidates non-dominated.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "artifact/store.hpp"
#include "cdfg/cdfg.hpp"
#include "explore/space.hpp"
#include "sched/sweep.hpp"

namespace cgra::explore {

/// One kernel of the workload set, with its weight in the quality
/// objective (a kernel scheduled 2× as often can count 2×).
struct ExploreKernel {
  std::string name;
  const Cdfg* graph = nullptr;
  double weight = 1.0;
};

/// Per-kernel outcome inside one candidate's evaluation.
struct KernelOutcome {
  std::string kernel;
  bool ok = false;
  unsigned contexts = 0;
  double staticUtilization = 0.0;
  std::string failureReason;  ///< typed reason name when !ok

  json::Value toJson() const;
};

/// One evaluated candidate: objectives plus the per-kernel evidence.
struct CandidateEval {
  Genotype genotype;
  std::string key;
  bool feasible = false;       ///< every kernel scheduled
  double weightedLength = 0.0; ///< Σ weight·contexts (quality axis, minimize)
  double meanUtilization = 0.0;
  double areaLuts = 0.0;       ///< lutLogic + lutMemory (area axis, minimize)
  unsigned dsp = 0;
  unsigned bram = 0;
  double frequencyMHz = 0.0;
  std::vector<KernelOutcome> kernels;

  json::Value toJson() const;
};

/// True when `a` Pareto-dominates `b`: `a` is feasible, no worse than `b`
/// on both (areaLuts, weightedLength), and strictly better on at least one.
/// A feasible candidate dominates every infeasible one.
bool dominates(const CandidateEval& a, const CandidateEval& b);

/// Indices of the non-dominated feasible members of `evals`, ascending.
std::vector<std::size_t> paretoFrontIndices(
    const std::vector<CandidateEval>& evals);

/// Evaluation traffic counters, surfaced in the explore report and the
/// registry metrics. `storeHits/storeMisses` are volatile (warm runs
/// differ); the rest is deterministic for a given run.
struct EvaluatorCounters {
  std::uint64_t evaluations = 0;  ///< distinct genotypes actually evaluated
  std::uint64_t memoHits = 0;     ///< proposals answered by the in-process memo
  std::uint64_t jobs = 0;         ///< candidate×kernel sweep jobs dispatched
  std::uint64_t storeHits = 0;
  std::uint64_t storeMisses = 0;
};

class Evaluator {
public:
  /// `store` may be null (memo-only evaluation). Kernel graphs must stay
  /// alive for the Evaluator's lifetime.
  Evaluator(std::vector<ExploreKernel> kernels, SweepOptions sweep,
            artifact::ArtifactStore* store);

  /// Evaluates a batch: unseen genotypes are deduped by key, materialized,
  /// and scheduled as one candidate×kernel sweep; results return in batch
  /// order. Deterministic for a given batch regardless of sweep threads or
  /// store warmth.
  std::vector<CandidateEval> evaluate(const std::vector<Genotype>& batch);

  /// True when `key` is already memoized (evaluating it again is free).
  bool known(const std::string& key) const { return memo_.contains(key); }

  const EvaluatorCounters& counters() const { return counters_; }

private:
  std::vector<ExploreKernel> kernels_;
  SweepOptions sweep_;
  artifact::ArtifactStore* store_;
  std::map<std::string, CandidateEval> memo_;
  EvaluatorCounters counters_;
};

}  // namespace cgra::explore
