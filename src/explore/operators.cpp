#include "explore/operators.hpp"

#include <algorithm>

namespace cgra::explore {

namespace {

/// Replaces `current` with a different element of `choices` when one
/// exists; with a single choice the value is forced to it.
template <typename T>
T differentChoice(Rng& rng, const std::vector<T>& choices, const T& current) {
  if (choices.size() == 1) return choices.front();
  T pick = current;
  while (pick == current)
    pick = choices[static_cast<std::size_t>(
        rng.range(0, static_cast<std::int64_t>(choices.size()) - 1))];
  return pick;
}

void mutateDma(Genotype& g, const CompositionSpace& space, Rng& rng) {
  const unsigned n = g.numPEs();
  const unsigned cap = std::min({space.maxDmaPEs, 4u, n});
  const auto randomId = [&] {
    return static_cast<PEId>(rng.range(0, static_cast<std::int64_t>(n) - 1));
  };
  const std::int64_t action = rng.range(0, 2);
  if (action == 0 && g.dmaPEs.size() < cap) {
    g.dmaPEs.push_back(randomId());  // repair() dedupes and sorts
  } else if (action == 1 && g.dmaPEs.size() > 1) {
    g.dmaPEs.erase(g.dmaPEs.begin() +
                   rng.range(0, static_cast<std::int64_t>(g.dmaPEs.size()) - 1));
  } else {
    g.dmaPEs[static_cast<std::size_t>(
        rng.range(0, static_cast<std::int64_t>(g.dmaPEs.size()) - 1))] =
        randomId();
  }
}

/// Toggles one PE's multiplier. Works on the *effective* set (empty =
/// everyone multiplies) so the semantics of the toggle never depend on the
/// encoding; repair() re-canonicalizes a full set back to empty.
void mutateMul(Genotype& g, const CompositionSpace& space, Rng& rng) {
  if (!space.allowHeteroMul) return;
  const unsigned n = g.numPEs();
  std::vector<PEId> effective = g.mulPEs;
  if (effective.empty())
    for (PEId i = 0; i < n; ++i) effective.push_back(i);

  const PEId p =
      static_cast<PEId>(rng.range(0, static_cast<std::int64_t>(n) - 1));
  const auto it = std::find(effective.begin(), effective.end(), p);
  if (it != effective.end() && effective.size() > 1)
    effective.erase(it);  // never drop the last multiplier
  else if (it == effective.end())
    effective.push_back(p);
  g.mulPEs = std::move(effective);
}

}  // namespace

Genotype mutate(const Genotype& g, const CompositionSpace& space, Rng& rng) {
  const std::string before = g.key();
  Genotype out = g;
  // A mutation that repairs back onto the same point is wasted search
  // effort; retry with fresh randomness a few times before accepting it.
  for (int attempt = 0; attempt < 8; ++attempt) {
    out = g;
    switch (rng.range(0, 7)) {
      case 0:
        out.topology = differentChoice(rng, space.topologies, out.topology);
        break;
      case 1:
        out.rows = rng.chance(1, 2) ? out.rows + 1
                                    : (out.rows > 0 ? out.rows - 1 : 0);
        break;
      case 2:
        out.cols = rng.chance(1, 2) ? out.cols + 1
                                    : (out.cols > 0 ? out.cols - 1 : 0);
        break;
      case 3:
        out.rfSize = differentChoice(rng, space.rfSizes, out.rfSize);
        break;
      case 4:
        out.cboxSlots = differentChoice(rng, space.cboxChoices, out.cboxSlots);
        break;
      case 5:
        out.contextLength =
            differentChoice(rng, space.contextLengths, out.contextLength);
        break;
      case 6:
        mutateDma(out, space, rng);
        break;
      default:
        mutateMul(out, space, rng);
        break;
    }
    space.repair(out);
    if (out.key() != before) return out;
  }
  return out;
}

Genotype crossover(const Genotype& a, const Genotype& b,
                   const CompositionSpace& space, Rng& rng) {
  Genotype child;
  child.topology = rng.chance(1, 2) ? a.topology : b.topology;
  if (rng.chance(1, 2)) {
    child.rows = a.rows;
    child.cols = a.cols;
  } else {
    child.rows = b.rows;
    child.cols = b.cols;
  }
  child.rfSize = rng.chance(1, 2) ? a.rfSize : b.rfSize;
  child.cboxSlots = rng.chance(1, 2) ? a.cboxSlots : b.cboxSlots;
  child.contextLength = rng.chance(1, 2) ? a.contextLength : b.contextLength;
  child.dmaPEs = rng.chance(1, 2) ? a.dmaPEs : b.dmaPEs;
  child.mulPEs = rng.chance(1, 2) ? a.mulPEs : b.mulPEs;
  space.repair(child);
  return child;
}

}  // namespace cgra::explore
