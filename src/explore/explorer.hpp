// Search loop of the design-space explorer (DESIGN.md §14).
//
// The Explorer ties the pieces together: a CompositionSpace to draw from,
// mutation/crossover operators, an Evaluator over the sweep engine, and one
// of three pluggable strategies:
//
//  * random    — every generation is `population` fresh samples; the
//                baseline and the exhaustive-ish mode for tiny spaces.
//  * hillclimb — mutate the scalar-best candidate found so far
//                (population-1 mutants + 1 fresh sample per generation to
//                keep exploring).
//  * genetic   — archive-wide parent selection by (Pareto rank, scalar
//                cost), uniform crossover + mutation offspring, elitism by
//                construction (the archive never forgets a candidate).
//
// Determinism: all randomness flows through one Rng seeded by
// deriveSeed(options.seed, ...) and consumed sequentially on the driver
// thread; evaluation is deterministic regardless of sweep threads or store
// warmth (DESIGN.md §10). Hence a fixed --seed yields byte-identical
// --stable reports across thread counts and cold/warm caches — the
// acceptance bar of the subsystem, asserted by tests and bench_explore.
//
// Budget semantics: `budget` caps *distinct evaluated genotypes*. Proposals
// already memoized are free; the proposal stream is clipped so the cap is
// exact, and the loop also stops after two consecutive generations that
// evaluated nothing new (a converged or exhausted search).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "explore/evaluator.hpp"
#include "explore/space.hpp"
#include "support/metrics_registry.hpp"

namespace cgra::explore {

struct ExploreOptions {
  /// One of: random | hillclimb | genetic.
  std::string strategy = "genetic";
  std::uint64_t seed = 42;
  /// Maximum distinct candidate evaluations across the whole run.
  unsigned budget = 64;
  /// Proposals per generation.
  unsigned population = 8;
  /// Passed through to the sweep engine (threads; schedules are dropped).
  SweepOptions sweep;
};

/// Per-generation progress, kept in the report so a front can be traced
/// back to when its members appeared.
struct GenerationStats {
  unsigned generation = 0;
  std::size_t proposed = 0;   ///< proposals after budget clipping
  std::size_t evaluated = 0;  ///< of those, distinct new genotypes evaluated
  std::size_t frontSize = 0;  ///< archive-wide Pareto front after the merge
  std::size_t dominated = 0;  ///< feasible archive members off the front
  std::size_t infeasible = 0; ///< infeasible archive members so far
  double wallMs = 0.0;        ///< volatile
  std::uint64_t storeHits = 0;  ///< volatile (warm runs differ)

  json::Value toJson(bool includeVolatile) const;
};

struct ExploreReport {
  /// Non-dominated feasible candidates over everything evaluated, sorted
  /// by genotype key.
  std::vector<CandidateEval> front;
  std::vector<GenerationStats> generations;
  std::size_t evaluations = 0;
  std::size_t dominatedCount = 0;
  std::size_t infeasibleCount = 0;
  EvaluatorCounters counters;
  std::string strategy;
  std::uint64_t seed = 0;
  unsigned budget = 0;
  unsigned population = 0;
  double wallTimeMs = 0.0;  ///< volatile

  /// Sorted-key JSON ("cgra-explore-v1"). `includeVolatile = false` omits
  /// wall times and store traffic, so the bytes are stable across thread
  /// counts, machines, and cache warmth.
  json::Value toJson(bool includeVolatile = true) const;
};

class Explorer {
public:
  /// Validates the space and options up front (typed errors). `store` may
  /// be null; kernel graphs must outlive the Explorer.
  Explorer(CompositionSpace space, std::vector<ExploreKernel> kernels,
           ExploreOptions options,
           artifact::ArtifactStore* store = nullptr);

  /// Runs the search to its budget (or convergence) and returns the
  /// report. One run() per Explorer.
  ExploreReport run();

  /// Live registry: cgra_explore_* counters/gauges plus the per-generation
  /// wall-time histogram.
  MetricsRegistry& registry() { return registry_; }
  std::string metricsText() const { return registry_.renderPrometheus(); }

private:
  std::vector<Genotype> propose();
  std::vector<Genotype> proposeRandom();
  std::vector<Genotype> proposeHillclimb();
  std::vector<Genotype> proposeGenetic();
  /// Drops proposals that would push distinct evaluations past the budget
  /// (memoized proposals are free and always kept).
  std::vector<Genotype> clipToBudget(std::vector<Genotype> proposals);
  void mergeIntoArchive(const std::vector<CandidateEval>& evals);

  CompositionSpace space_;
  ExploreOptions options_;
  Evaluator evaluator_;
  Rng rng_;
  /// Every distinct evaluated candidate, in first-evaluation order.
  std::vector<CandidateEval> archive_;

  MetricsRegistry registry_;
  Counter& proposalsTotal_;
  Counter& evaluationsTotal_;
  Counter& memoHitsTotal_;
  Counter& storeHitsTotal_;
  Counter& jobsTotal_;
  Gauge& frontSizeGauge_;
  AtomicHistogram& generationUs_;
};

}  // namespace cgra::explore
