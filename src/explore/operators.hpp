// Mutation and crossover over Genotypes (DESIGN.md §14).
//
// Both operators draw from the caller's Rng (one sequential stream per
// explore run, so results are reproducible under --seed) and finish with
// CompositionSpace::repair(), which is what makes the guarantee "operators
// only ever produce well-formed Compositions" structural rather than
// hoped-for: whatever a step does to the encoding, the result is projected
// back into the space before anyone materializes it.
#pragma once

#include "explore/space.hpp"
#include "support/rng.hpp"

namespace cgra::explore {

/// One randomized edit of `g`: topology swap, ±1 row/col, an RF/C-Box/
/// context step to a different allowed choice, a DMA move/add/remove, or a
/// multiplier toggle. Retries a few kinds so the returned genotype usually
/// differs from `g` (in a space with a single point it may not).
Genotype mutate(const Genotype& g, const CompositionSpace& space, Rng& rng);

/// Uniform crossover: each field is inherited from one parent (the shape
/// travels as a (rows, cols) pair so child meshes stay parent-shaped), then
/// the child is repaired into the space.
Genotype crossover(const Genotype& a, const Genotype& b,
                   const CompositionSpace& space, Rng& rng);

}  // namespace cgra::explore
