// Composition design space for the `cgra-tool explore` auto-tuner
// (DESIGN.md §14).
//
// A `Genotype` is the searchable encoding of one candidate CGRA: topology
// family, array shape, RF width, C-Box slots, context-memory length, DMA
// placement, and the multiplier subset (per-PE op-set inhomogeneity in the
// style of composition F). `materialize()` turns it into a real
// `Composition` through `arch::makeTopology`, so every candidate the search
// evaluates has passed both the factory's typed checks and
// `Composition::validate()`.
//
// A `CompositionSpace` bounds the search: which topology families, which
// shape ranges, which discrete RF/C-Box/context choices, how many DMA PEs,
// and whether heterogeneous multiplier assignment is allowed. The space is
// closed under `repair()`: any genotype — freshly sampled, mutated, crossed
// over, or parsed from user JSON — is clamped/snapped back into the space,
// which is how the mutation operators guarantee they only ever produce
// well-formed candidates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/composition.hpp"
#include "json/json.hpp"
#include "support/rng.hpp"

namespace cgra::explore {

/// One point of the composition design space. Fields mirror the knobs the
/// ROADMAP names: array size, interconnect topology, per-PE op sets, RF
/// width, C-Box slots, DMA placement.
struct Genotype {
  /// Topology family, one of arch::makeTopology's names:
  /// mesh | torus | ring | uniring | star.
  std::string topology = "mesh";
  unsigned rows = 2;
  unsigned cols = 2;
  unsigned rfSize = 128;
  unsigned cboxSlots = 32;
  unsigned contextLength = 256;
  /// DMA-capable PEs (paper §IV-A.1: 1..4 of them).
  std::vector<PEId> dmaPEs{0};
  /// PEs that keep IMUL; empty means every PE multiplies (the canonical
  /// encoding of a homogeneous array — repair() collapses the full set to
  /// empty so equal hardware always has equal keys).
  std::vector<PEId> mulPEs;

  unsigned numPEs() const { return rows * cols; }

  /// Canonical, filesystem-safe identity string, e.g.
  /// "mesh2x3-rf64-cb16-cx128-d0.5-mall". Two genotypes describe the same
  /// hardware iff their keys are equal; the key doubles as the
  /// Composition name, so sweep labels and artifact-store keys of distinct
  /// candidates never collide.
  std::string key() const;

  /// Builds the candidate via arch::makeTopology; throws cgra::Error on a
  /// degenerate genotype (explore always repairs first, so a throw here is
  /// a bug in an operator, not a user error).
  Composition materialize() const;

  json::Value toJson() const;
  static Genotype fromJson(const json::Value& v);
};

/// Bounds of the search. Defaults span the paper's evaluated range (4..16
/// PEs, RF 32..128 per §VI-B) without exploding the space.
struct CompositionSpace {
  std::vector<std::string> topologies{"mesh", "torus", "ring", "star"};
  unsigned minRows = 1;
  unsigned maxRows = 4;
  unsigned minCols = 2;
  unsigned maxCols = 4;
  std::vector<unsigned> rfSizes{32, 64, 128};
  std::vector<unsigned> cboxChoices{8, 16, 32};
  std::vector<unsigned> contextLengths{128, 256};
  /// Upper bound on DMA PEs per candidate (1..4; the paper caps at 4).
  unsigned maxDmaPEs = 2;
  /// Allow composition-F-style multiplier inhomogeneity (mulPEs ⊂ PEs).
  bool allowHeteroMul = true;

  /// Throws cgra::Error on an unusable space: empty/unknown topology list,
  /// inverted or zero ranges, spaces whose every point would fail
  /// Composition::validate() (RF < 4, C-Box < 2, one-PE arrays, torus in a
  /// sub-2×2 shape range).
  void validate() const;

  /// Uniform draw from the space; the result already satisfies contains().
  Genotype sample(Rng& rng) const;

  /// Projects an arbitrary genotype back into the space: clamps the shape,
  /// snaps RF/C-Box/context to the nearest allowed choice (ties toward the
  /// smaller value), sorts/dedupes/bounds the DMA and MUL id lists, and
  /// canonicalizes a full MUL set to "empty = all". Deterministic, and a
  /// fixpoint: repair(repair(g)) == repair(g).
  void repair(Genotype& g) const;

  /// True when `g` is inside the space and in canonical form (what
  /// sample() produces and repair() enforces).
  bool contains(const Genotype& g) const;

  json::Value toJson() const;
  /// Parses a user space spec; unknown keys are a typed error so a typo
  /// ("rfsizes") narrows the search loudly rather than silently. Validates
  /// before returning.
  static CompositionSpace fromJson(const json::Value& v);
  static CompositionSpace fromJsonFile(const std::string& path);
};

}  // namespace cgra::explore
