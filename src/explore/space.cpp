#include "explore/space.hpp"

#include <algorithm>
#include <set>

#include "arch/factory.hpp"
#include "support/assert.hpp"

namespace cgra::explore {

namespace {

const std::vector<std::string>& knownTopologies() {
  static const std::vector<std::string> kNames{"mesh", "torus", "ring",
                                              "uniring", "star"};
  return kNames;
}

bool isKnownTopology(const std::string& t) {
  const auto& names = knownTopologies();
  return std::find(names.begin(), names.end(), t) != names.end();
}

std::string joinIds(const std::vector<PEId>& ids) {
  std::string out;
  for (PEId id : ids) {
    if (!out.empty()) out += '.';
    out += std::to_string(id);
  }
  return out;
}

/// Nearest value in `choices`; on an exact tie the smaller value wins so
/// snapping is deterministic regardless of the list's order.
unsigned snapChoice(unsigned v, const std::vector<unsigned>& choices) {
  unsigned best = choices.front();
  for (unsigned c : choices) {
    const unsigned dBest = best > v ? best - v : v - best;
    const unsigned dC = c > v ? c - v : v - c;
    if (dC < dBest || (dC == dBest && c < best)) best = c;
  }
  return best;
}

template <typename T>
const T& pickFrom(Rng& rng, const std::vector<T>& choices) {
  return choices[static_cast<std::size_t>(
      rng.range(0, static_cast<std::int64_t>(choices.size()) - 1))];
}

/// `count` distinct PE ids < n, ascending (std::set iteration order), so a
/// given RNG stream always yields the same list.
std::vector<PEId> pickDistinctIds(Rng& rng, unsigned n, unsigned count) {
  std::set<PEId> ids;
  while (ids.size() < count)
    ids.insert(static_cast<PEId>(rng.range(0, static_cast<std::int64_t>(n) - 1)));
  return {ids.begin(), ids.end()};
}

void sortUniqueInRange(std::vector<PEId>& ids, unsigned n) {
  ids.erase(std::remove_if(ids.begin(), ids.end(),
                           [n](PEId id) { return id >= n; }),
            ids.end());
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

unsigned asUnsignedField(const json::Value& v, const std::string& key) {
  const std::int64_t raw = v.asInt();
  if (raw < 0 || raw > (1 << 20))
    throw Error("explore space: \"" + key + "\" out of range");
  return static_cast<unsigned>(raw);
}

std::vector<unsigned> asUnsignedList(const json::Value& v,
                                     const std::string& key) {
  std::vector<unsigned> out;
  for (const json::Value& e : v.asArray()) out.push_back(asUnsignedField(e, key));
  return out;
}

std::vector<PEId> asIdList(const json::Value& v, const std::string& key) {
  std::vector<PEId> out;
  for (const json::Value& e : v.asArray())
    out.push_back(static_cast<PEId>(asUnsignedField(e, key)));
  return out;
}

json::Value idListToJson(const std::vector<PEId>& ids) {
  json::Array arr;
  for (PEId id : ids) arr.emplace_back(static_cast<std::int64_t>(id));
  return arr;
}

}  // namespace

std::string Genotype::key() const {
  return topology + std::to_string(rows) + "x" + std::to_string(cols) +
         "-rf" + std::to_string(rfSize) + "-cb" + std::to_string(cboxSlots) +
         "-cx" + std::to_string(contextLength) + "-d" + joinIds(dmaPEs) +
         "-m" + (mulPEs.empty() ? std::string("all") : joinIds(mulPEs));
}

Composition Genotype::materialize() const {
  FactoryOptions opts;
  opts.regfileSize = rfSize;
  opts.contextMemoryLength = contextLength;
  opts.cboxSlots = cboxSlots;
  return makeTopology(key(), topology, rows, cols, opts, dmaPEs, mulPEs);
}

json::Value Genotype::toJson() const {
  json::Object obj;
  obj["topology"] = topology;
  obj["rows"] = static_cast<std::int64_t>(rows);
  obj["cols"] = static_cast<std::int64_t>(cols);
  obj["rfSize"] = static_cast<std::int64_t>(rfSize);
  obj["cboxSlots"] = static_cast<std::int64_t>(cboxSlots);
  obj["contextLength"] = static_cast<std::int64_t>(contextLength);
  obj["dmaPEs"] = idListToJson(dmaPEs);
  obj["mulPEs"] = idListToJson(mulPEs);
  return obj;
}

Genotype Genotype::fromJson(const json::Value& v) {
  Genotype g;
  for (const auto& [key, value] : v.asObject()) {
    if (key == "topology")
      g.topology = value.asString();
    else if (key == "rows")
      g.rows = asUnsignedField(value, key);
    else if (key == "cols")
      g.cols = asUnsignedField(value, key);
    else if (key == "rfSize")
      g.rfSize = asUnsignedField(value, key);
    else if (key == "cboxSlots")
      g.cboxSlots = asUnsignedField(value, key);
    else if (key == "contextLength")
      g.contextLength = asUnsignedField(value, key);
    else if (key == "dmaPEs")
      g.dmaPEs = asIdList(value, key);
    else if (key == "mulPEs")
      g.mulPEs = asIdList(value, key);
    else
      throw Error("explore genotype: unknown key \"" + key + "\"");
  }
  if (!isKnownTopology(g.topology))
    throw Error("explore genotype: unknown topology \"" + g.topology + "\"");
  return g;
}

void CompositionSpace::validate() const {
  if (topologies.empty())
    throw Error("explore space: empty topology list");
  for (const std::string& t : topologies) {
    if (!isKnownTopology(t))
      throw Error("explore space: unknown topology \"" + t +
                  "\" (mesh|torus|ring|uniring|star)");
    if (std::count(topologies.begin(), topologies.end(), t) > 1)
      throw Error("explore space: duplicate topology \"" + t + "\"");
  }
  if (minRows < 1 || minCols < 1 || minRows > maxRows || minCols > maxCols)
    throw Error("explore space: bad shape range " + std::to_string(minRows) +
                ".." + std::to_string(maxRows) + " x " +
                std::to_string(minCols) + ".." + std::to_string(maxCols));
  if (maxRows * maxCols < 2)
    throw Error("explore space: largest shape has fewer than 2 PEs");
  if (maxRows * maxCols > 64)
    throw Error("explore space: largest shape exceeds 64 PEs");
  const bool hasTorus =
      std::find(topologies.begin(), topologies.end(), "torus") !=
      topologies.end();
  if (hasTorus && (maxRows < 2 || maxCols < 2))
    throw Error("explore space: torus requires a shape range reaching 2x2");
  if (rfSizes.empty())
    throw Error("explore space: empty rfSizes");
  for (unsigned rf : rfSizes)
    if (rf < 4)
      throw Error("explore space: RF size " + std::to_string(rf) +
                  " below the minimum of 4");
  if (cboxChoices.empty())
    throw Error("explore space: empty cboxSlots choices");
  for (unsigned cb : cboxChoices)
    if (cb < 2)
      throw Error("explore space: C-Box slots " + std::to_string(cb) +
                  " below the minimum of 2");
  if (contextLengths.empty())
    throw Error("explore space: empty contextLengths");
  for (unsigned cx : contextLengths)
    if (cx == 0)
      throw Error("explore space: context length 0");
  if (maxDmaPEs < 1 || maxDmaPEs > 4)
    throw Error("explore space: maxDmaPEs must be 1..4, got " +
                std::to_string(maxDmaPEs));
}

Genotype CompositionSpace::sample(Rng& rng) const {
  Genotype g;
  g.topology = pickFrom(rng, topologies);
  unsigned rowLo = minRows;
  unsigned colLo = minCols;
  if (g.topology == "torus") {
    rowLo = std::max(rowLo, 2u);
    colLo = std::max(colLo, 2u);
  }
  g.rows = static_cast<unsigned>(rng.range(rowLo, maxRows));
  g.cols = static_cast<unsigned>(rng.range(colLo, maxCols));
  g.rfSize = pickFrom(rng, rfSizes);
  g.cboxSlots = pickFrom(rng, cboxChoices);
  g.contextLength = pickFrom(rng, contextLengths);

  const unsigned n = g.numPEs();
  const unsigned dmaCap = std::min({maxDmaPEs, 4u, n});
  const unsigned dmaCount = static_cast<unsigned>(rng.range(1, dmaCap));
  g.dmaPEs = pickDistinctIds(rng, n, dmaCount);

  g.mulPEs.clear();
  if (allowHeteroMul && n > 1 && rng.chance(1, 2)) {
    // A proper subset keeps multipliers; the full set is the homogeneous
    // case already encoded as "empty".
    const unsigned mulCount = static_cast<unsigned>(rng.range(1, n - 1));
    g.mulPEs = pickDistinctIds(rng, n, mulCount);
  }
  repair(g);
  return g;
}

void CompositionSpace::repair(Genotype& g) const {
  if (std::find(topologies.begin(), topologies.end(), g.topology) ==
      topologies.end())
    g.topology = topologies.front();

  g.rows = std::clamp(g.rows, minRows, maxRows);
  g.cols = std::clamp(g.cols, minCols, maxCols);
  if (g.topology == "torus") {
    g.rows = std::max(g.rows, 2u);  // validate() guarantees maxRows >= 2
    g.cols = std::max(g.cols, 2u);
  }
  // Every topology family (and the scheduler) needs at least two PEs.
  while (g.numPEs() < 2 && (g.cols < maxCols || g.rows < maxRows)) {
    if (g.cols < maxCols)
      ++g.cols;
    else
      ++g.rows;
  }

  g.rfSize = snapChoice(g.rfSize, rfSizes);
  g.cboxSlots = snapChoice(g.cboxSlots, cboxChoices);
  g.contextLength = snapChoice(g.contextLength, contextLengths);

  const unsigned n = g.numPEs();
  sortUniqueInRange(g.dmaPEs, n);
  const unsigned dmaCap = std::min({maxDmaPEs, 4u, n});
  if (g.dmaPEs.size() > dmaCap) g.dmaPEs.resize(dmaCap);
  if (g.dmaPEs.empty()) g.dmaPEs = {0};

  if (!allowHeteroMul) g.mulPEs.clear();
  sortUniqueInRange(g.mulPEs, n);
  // Canonical form: "every PE multiplies" is the empty list.
  if (g.mulPEs.size() >= n) g.mulPEs.clear();
}

bool CompositionSpace::contains(const Genotype& g) const {
  Genotype repaired = g;
  repair(repaired);
  return repaired.key() == g.key();
}

json::Value CompositionSpace::toJson() const {
  json::Object obj;
  json::Array topo;
  for (const std::string& t : topologies) topo.emplace_back(t);
  obj["topologies"] = std::move(topo);
  obj["minRows"] = static_cast<std::int64_t>(minRows);
  obj["maxRows"] = static_cast<std::int64_t>(maxRows);
  obj["minCols"] = static_cast<std::int64_t>(minCols);
  obj["maxCols"] = static_cast<std::int64_t>(maxCols);
  auto list = [](const std::vector<unsigned>& vs) {
    json::Array arr;
    for (unsigned v : vs) arr.emplace_back(static_cast<std::int64_t>(v));
    return arr;
  };
  obj["rfSizes"] = list(rfSizes);
  obj["cboxSlots"] = list(cboxChoices);
  obj["contextLengths"] = list(contextLengths);
  obj["maxDmaPEs"] = static_cast<std::int64_t>(maxDmaPEs);
  obj["allowHeteroMul"] = allowHeteroMul;
  return obj;
}

CompositionSpace CompositionSpace::fromJson(const json::Value& v) {
  CompositionSpace s;
  for (const auto& [key, value] : v.asObject()) {
    if (key == "topologies") {
      s.topologies.clear();
      for (const json::Value& t : value.asArray())
        s.topologies.push_back(t.asString());
    } else if (key == "minRows") {
      s.minRows = asUnsignedField(value, key);
    } else if (key == "maxRows") {
      s.maxRows = asUnsignedField(value, key);
    } else if (key == "minCols") {
      s.minCols = asUnsignedField(value, key);
    } else if (key == "maxCols") {
      s.maxCols = asUnsignedField(value, key);
    } else if (key == "rfSizes") {
      s.rfSizes = asUnsignedList(value, key);
    } else if (key == "cboxSlots") {
      s.cboxChoices = asUnsignedList(value, key);
    } else if (key == "contextLengths") {
      s.contextLengths = asUnsignedList(value, key);
    } else if (key == "maxDmaPEs") {
      s.maxDmaPEs = asUnsignedField(value, key);
    } else if (key == "allowHeteroMul") {
      s.allowHeteroMul = value.asBool();
    } else {
      throw Error("explore space: unknown key \"" + key +
                  "\" (topologies, minRows, maxRows, minCols, maxCols, "
                  "rfSizes, cboxSlots, contextLengths, maxDmaPEs, "
                  "allowHeteroMul)");
    }
  }
  s.validate();
  return s;
}

CompositionSpace CompositionSpace::fromJsonFile(const std::string& path) {
  return fromJson(json::parseFile(path));
}

}  // namespace cgra::explore
