#include "explore/explorer.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "explore/operators.hpp"

namespace cgra::explore {

namespace {

/// Stream id of the search RNG under the shared seeding convention
/// (support/rng.hpp): workload data and random kernels use other ids, so
/// `--seed 42` everywhere never aliases streams.
constexpr std::uint64_t kExploreStream = 0xE07;

double millisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Scalar collapse of the two objectives, used only for ranking parents
/// and the hillclimb pivot (the report itself stays bi-objective). The
/// product form is scale-free: halving area and doubling length cancel.
double scalarCost(const CandidateEval& e) {
  if (!e.feasible) return std::numeric_limits<double>::infinity();
  return e.areaLuts * e.weightedLength;
}

/// Strict-weak order: feasible before infeasible, then cheaper, then by
/// key so ranking never depends on archive insertion order.
bool betterScalar(const CandidateEval& a, const CandidateEval& b) {
  if (a.feasible != b.feasible) return a.feasible;
  const double ca = scalarCost(a);
  const double cb = scalarCost(b);
  if (ca != cb) return ca < cb;
  return a.key < b.key;
}

}  // namespace

json::Value GenerationStats::toJson(bool includeVolatile) const {
  json::Object obj;
  obj["generation"] = static_cast<std::int64_t>(generation);
  obj["proposed"] = static_cast<std::int64_t>(proposed);
  obj["evaluated"] = static_cast<std::int64_t>(evaluated);
  obj["frontSize"] = static_cast<std::int64_t>(frontSize);
  obj["dominated"] = static_cast<std::int64_t>(dominated);
  obj["infeasible"] = static_cast<std::int64_t>(infeasible);
  if (includeVolatile) {
    obj["wallMs"] = wallMs;
    obj["storeHits"] = static_cast<std::int64_t>(storeHits);
  }
  return obj;
}

json::Value ExploreReport::toJson(bool includeVolatile) const {
  json::Object obj;
  obj["schema"] = "cgra-explore-v1";
  obj["strategy"] = strategy;
  // 64-bit seeds exceed JSON's exact integer range; dump as a string like
  // the schedule fingerprints do.
  obj["seed"] = std::to_string(seed);
  obj["budget"] = static_cast<std::int64_t>(budget);
  obj["population"] = static_cast<std::int64_t>(population);
  obj["evaluations"] = static_cast<std::int64_t>(evaluations);
  obj["dominated"] = static_cast<std::int64_t>(dominatedCount);
  obj["infeasible"] = static_cast<std::int64_t>(infeasibleCount);
  obj["frontSize"] = static_cast<std::int64_t>(front.size());

  json::Array frontArr;
  for (const CandidateEval& e : front) frontArr.push_back(e.toJson());
  obj["front"] = std::move(frontArr);

  json::Array gens;
  for (const GenerationStats& g : generations)
    gens.push_back(g.toJson(includeVolatile));
  obj["generations"] = std::move(gens);

  json::Object ctr;
  ctr["evaluations"] = static_cast<std::int64_t>(counters.evaluations);
  ctr["memoHits"] = static_cast<std::int64_t>(counters.memoHits);
  ctr["jobs"] = static_cast<std::int64_t>(counters.jobs);
  if (includeVolatile) {
    ctr["storeHits"] = static_cast<std::int64_t>(counters.storeHits);
    ctr["storeMisses"] = static_cast<std::int64_t>(counters.storeMisses);
  }
  obj["counters"] = std::move(ctr);

  if (includeVolatile) obj["wallTimeMs"] = wallTimeMs;
  return json::sortKeys(obj);
}

Explorer::Explorer(CompositionSpace space, std::vector<ExploreKernel> kernels,
                   ExploreOptions options, artifact::ArtifactStore* store)
    : space_(std::move(space)),
      options_(std::move(options)),
      evaluator_(std::move(kernels), options_.sweep, store),
      rng_(deriveSeed(options_.seed, kExploreStream)),
      registry_(),
      proposalsTotal_(registry_.counter("cgra_explore_proposals_total",
                                        "Candidate genotypes proposed")),
      evaluationsTotal_(registry_.counter(
          "cgra_explore_evaluations_total",
          "Distinct candidate genotypes evaluated")),
      memoHitsTotal_(registry_.counter(
          "cgra_explore_memo_hits_total",
          "Proposals answered by the in-process evaluation memo")),
      storeHitsTotal_(registry_.counter(
          "cgra_explore_store_hits_total",
          "Candidate-kernel jobs served by the artifact store")),
      jobsTotal_(registry_.counter("cgra_explore_jobs_total",
                                   "Candidate-kernel sweep jobs dispatched")),
      frontSizeGauge_(registry_.gauge("cgra_explore_front_size",
                                      "Current Pareto-front size")),
      generationUs_(registry_.histogram("cgra_explore_generation_us",
                                        "Per-generation wall time")) {
  space_.validate();
  if (options_.strategy != "random" && options_.strategy != "hillclimb" &&
      options_.strategy != "genetic")
    throw Error("explore: unknown strategy \"" + options_.strategy +
                "\" (random|hillclimb|genetic)");
  if (options_.budget == 0) throw Error("explore: budget must be >= 1");
  if (options_.population == 0)
    throw Error("explore: population must be >= 1");
}

std::vector<Genotype> Explorer::proposeRandom() {
  std::vector<Genotype> out;
  for (unsigned i = 0; i < options_.population; ++i)
    out.push_back(space_.sample(rng_));
  return out;
}

std::vector<Genotype> Explorer::proposeHillclimb() {
  if (archive_.empty()) return proposeRandom();
  const CandidateEval& pivot =
      *std::min_element(archive_.begin(), archive_.end(), betterScalar);
  std::vector<Genotype> out;
  for (unsigned i = 0; i + 1 < options_.population; ++i)
    out.push_back(mutate(pivot.genotype, space_, rng_));
  out.push_back(space_.sample(rng_));  // keep escaping local optima
  return out;
}

std::vector<Genotype> Explorer::proposeGenetic() {
  if (archive_.empty()) return proposeRandom();
  // Parent pool: Pareto rank 0 first (the current front), then everyone
  // else, each tier ordered by scalar cost with a key tiebreak.
  const std::vector<std::size_t> front = paretoFrontIndices(archive_);
  std::vector<bool> onFront(archive_.size(), false);
  for (std::size_t i : front) onFront[i] = true;
  std::vector<std::size_t> order(archive_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (onFront[a] != onFront[b]) return static_cast<bool>(onFront[a]);
    return betterScalar(archive_[a], archive_[b]);
  });
  const std::size_t poolSize =
      std::min<std::size_t>(order.size(), options_.population);

  std::vector<Genotype> out;
  for (unsigned i = 0; i + 1 < options_.population; ++i) {
    const auto pick = [&] {
      return archive_[order[static_cast<std::size_t>(
                          rng_.range(0, static_cast<std::int64_t>(poolSize) -
                                            1))]]
          .genotype;
    };
    Genotype child = crossover(pick(), pick(), space_, rng_);
    if (rng_.chance(1, 2)) child = mutate(child, space_, rng_);
    out.push_back(std::move(child));
  }
  out.push_back(space_.sample(rng_));  // immigration keeps diversity up
  return out;
}

std::vector<Genotype> Explorer::propose() {
  if (options_.strategy == "random") return proposeRandom();
  if (options_.strategy == "hillclimb") return proposeHillclimb();
  return proposeGenetic();
}

std::vector<Genotype> Explorer::clipToBudget(std::vector<Genotype> proposals) {
  const std::uint64_t remaining =
      options_.budget - evaluator_.counters().evaluations;
  std::vector<Genotype> kept;
  std::vector<std::string> newKeys;
  for (Genotype& g : proposals) {
    const std::string key = g.key();
    const bool seen =
        evaluator_.known(key) ||
        std::find(newKeys.begin(), newKeys.end(), key) != newKeys.end();
    if (!seen) {
      if (newKeys.size() >= remaining) continue;  // over budget: drop
      newKeys.push_back(key);
    }
    kept.push_back(std::move(g));
  }
  return kept;
}

void Explorer::mergeIntoArchive(const std::vector<CandidateEval>& evals) {
  for (const CandidateEval& e : evals) {
    bool present = false;
    for (const CandidateEval& a : archive_) present = present || a.key == e.key;
    if (!present) archive_.push_back(e);
  }
}

ExploreReport Explorer::run() {
  const auto runStart = std::chrono::steady_clock::now();
  ExploreReport report;
  report.strategy = options_.strategy;
  report.seed = options_.seed;
  report.budget = options_.budget;
  report.population = options_.population;

  unsigned generation = 0;
  unsigned dryGenerations = 0;
  while (evaluator_.counters().evaluations < options_.budget &&
         dryGenerations < 2) {
    const auto genStart = std::chrono::steady_clock::now();
    const EvaluatorCounters before = evaluator_.counters();

    std::vector<Genotype> proposals = clipToBudget(propose());
    if (proposals.empty()) break;
    const std::vector<CandidateEval> evals = evaluator_.evaluate(proposals);
    mergeIntoArchive(evals);

    const EvaluatorCounters& after = evaluator_.counters();
    const std::vector<std::size_t> front = paretoFrontIndices(archive_);
    const std::size_t feasible =
        static_cast<std::size_t>(std::count_if(
            archive_.begin(), archive_.end(),
            [](const CandidateEval& e) { return e.feasible; }));

    GenerationStats stats;
    stats.generation = generation;
    stats.proposed = proposals.size();
    stats.evaluated =
        static_cast<std::size_t>(after.evaluations - before.evaluations);
    stats.frontSize = front.size();
    stats.dominated = feasible - front.size();
    stats.infeasible = archive_.size() - feasible;
    stats.wallMs = millisSince(genStart);
    stats.storeHits = after.storeHits - before.storeHits;
    report.generations.push_back(stats);

    proposalsTotal_.inc(proposals.size());
    evaluationsTotal_.inc(after.evaluations - before.evaluations);
    memoHitsTotal_.inc(after.memoHits - before.memoHits);
    storeHitsTotal_.inc(after.storeHits - before.storeHits);
    jobsTotal_.inc(after.jobs - before.jobs);
    frontSizeGauge_.set(static_cast<std::int64_t>(front.size()));
    generationUs_.record(static_cast<std::uint64_t>(stats.wallMs * 1000.0));

    dryGenerations = stats.evaluated == 0 ? dryGenerations + 1 : 0;
    ++generation;
  }

  const std::vector<std::size_t> front = paretoFrontIndices(archive_);
  for (std::size_t i : front) report.front.push_back(archive_[i]);
  std::sort(report.front.begin(), report.front.end(),
            [](const CandidateEval& a, const CandidateEval& b) {
              return a.key < b.key;
            });
  const std::size_t feasible = static_cast<std::size_t>(
      std::count_if(archive_.begin(), archive_.end(),
                    [](const CandidateEval& e) { return e.feasible; }));
  report.evaluations = archive_.size();
  report.dominatedCount = feasible - front.size();
  report.infeasibleCount = archive_.size() - feasible;
  report.counters = evaluator_.counters();
  report.wallTimeMs = millisSince(runStart);
  return report;
}

}  // namespace cgra::explore
