#include "explore/evaluator.hpp"

#include <deque>

#include "arch/resource_model.hpp"
#include "artifact/sweep_cache.hpp"
#include "sched/scheduler.hpp"

namespace cgra::explore {

json::Value KernelOutcome::toJson() const {
  json::Object obj;
  obj["kernel"] = kernel;
  obj["ok"] = ok;
  obj["contexts"] = static_cast<std::int64_t>(contexts);
  obj["staticUtilization"] = staticUtilization;
  if (!ok) obj["failureReason"] = failureReason;
  return obj;
}

json::Value CandidateEval::toJson() const {
  json::Object obj;
  obj["key"] = key;
  obj["genotype"] = genotype.toJson();
  obj["feasible"] = feasible;
  obj["weightedLength"] = weightedLength;
  obj["meanUtilization"] = meanUtilization;
  obj["areaLuts"] = areaLuts;
  obj["dsp"] = static_cast<std::int64_t>(dsp);
  obj["bram"] = static_cast<std::int64_t>(bram);
  obj["frequencyMHz"] = frequencyMHz;
  json::Array ks;
  for (const KernelOutcome& k : kernels) ks.push_back(k.toJson());
  obj["kernels"] = std::move(ks);
  return obj;
}

bool dominates(const CandidateEval& a, const CandidateEval& b) {
  if (!a.feasible) return false;
  if (!b.feasible) return true;
  const bool noWorse =
      a.areaLuts <= b.areaLuts && a.weightedLength <= b.weightedLength;
  const bool strictlyBetter =
      a.areaLuts < b.areaLuts || a.weightedLength < b.weightedLength;
  return noWorse && strictlyBetter;
}

std::vector<std::size_t> paretoFrontIndices(
    const std::vector<CandidateEval>& evals) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < evals.size(); ++i) {
    if (!evals[i].feasible) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < evals.size() && !dominated; ++j)
      dominated = j != i && dominates(evals[j], evals[i]);
    if (!dominated) front.push_back(i);
  }
  return front;
}

Evaluator::Evaluator(std::vector<ExploreKernel> kernels, SweepOptions sweep,
                     artifact::ArtifactStore* store)
    : kernels_(std::move(kernels)), sweep_(sweep), store_(store) {
  if (kernels_.empty()) throw Error("explore evaluator: empty kernel set");
  for (const ExploreKernel& k : kernels_)
    if (k.graph == nullptr)
      throw Error("explore evaluator: kernel \"" + k.name + "\" has no CDFG");
  // Candidate ranking needs lengths and utilizations, never the schedules.
  sweep_.keepSchedules = false;
}

std::vector<CandidateEval> Evaluator::evaluate(
    const std::vector<Genotype>& batch) {
  // Collect the genotypes this batch actually has to schedule: unseen keys,
  // first occurrence wins within the batch.
  std::vector<Genotype> fresh;
  for (const Genotype& g : batch) {
    const std::string key = g.key();
    if (memo_.contains(key)) {
      ++counters_.memoHits;
      continue;
    }
    bool inFresh = false;
    for (const Genotype& f : fresh) inFresh = inFresh || f.key() == key;
    if (inFresh) {
      ++counters_.memoHits;
      continue;
    }
    fresh.push_back(g);
  }

  if (!fresh.empty()) {
    // Deque: SweepJob keeps non-owning pointers, so element addresses must
    // survive the loop that appends compositions.
    std::deque<Composition> comps;
    std::vector<SweepJob> jobs;
    for (const Genotype& g : fresh) {
      comps.push_back(g.materialize());
      const Composition& comp = comps.back();
      for (const ExploreKernel& k : kernels_)
        jobs.push_back(SweepJob{&comp, k.graph, k.name + "@" + comp.name(),
                                SchedulerOptions{}});
    }
    counters_.jobs += jobs.size();

    const SweepReport report =
        store_ != nullptr ? artifact::runCachedSweep(jobs, sweep_, *store_)
                          : runSweep(jobs, sweep_);
    counters_.storeHits += report.cacheHits;
    counters_.storeMisses += report.cacheMisses;

    for (std::size_t c = 0; c < fresh.size(); ++c) {
      CandidateEval eval;
      eval.genotype = fresh[c];
      eval.key = fresh[c].key();
      eval.feasible = true;
      double utilSum = 0.0;
      unsigned okCount = 0;
      for (std::size_t k = 0; k < kernels_.size(); ++k) {
        const SweepJobResult& r = report.results[c * kernels_.size() + k];
        KernelOutcome outcome;
        outcome.kernel = kernels_[k].name;
        outcome.ok = r.ok;
        if (r.ok) {
          outcome.contexts = r.stats.contextsUsed;
          outcome.staticUtilization = r.staticUtilization;
          eval.weightedLength +=
              kernels_[k].weight * static_cast<double>(r.stats.contextsUsed);
          utilSum += r.staticUtilization;
          ++okCount;
        } else {
          outcome.failureReason = failureReasonName(r.failure.reason);
          eval.feasible = false;
        }
        eval.kernels.push_back(std::move(outcome));
      }
      eval.meanUtilization =
          okCount == 0 ? 0.0 : utilSum / static_cast<double>(okCount);
      const ResourceEstimate est = estimateResources(comps[c]);
      eval.areaLuts = est.lutLogic + est.lutMemory;
      eval.dsp = est.dsp;
      eval.bram = est.bram;
      eval.frequencyMHz = est.frequencyMHz;
      memo_.emplace(eval.key, std::move(eval));
      ++counters_.evaluations;
    }
  }

  std::vector<CandidateEval> out;
  out.reserve(batch.size());
  for (const Genotype& g : batch) out.push_back(memo_.at(g.key()));
  return out;
}

}  // namespace cgra::explore
