#include "ctx/regalloc.hpp"

#include <algorithm>
#include <map>

namespace cgra {

namespace {

/// Access events of one register: cycles of writes (commit cycle) and reads.
struct Usage {
  std::vector<unsigned> writes;
  std::vector<unsigned> reads;
  unsigned lo = 0, hi = 0;
  bool pinnedFromStart = false;  ///< live-in home
  bool pinnedToEnd = false;      ///< live-out home

  bool empty() const { return writes.empty() && reads.empty(); }

  void computeBase(unsigned scheduleEnd) {
    unsigned mn = static_cast<unsigned>(-1), mx = 0;
    for (unsigned c : writes) {
      mn = std::min(mn, c);
      mx = std::max(mx, c);
    }
    for (unsigned c : reads) {
      mn = std::min(mn, c);
      mx = std::max(mx, c);
    }
    lo = pinnedFromStart ? 0 : mn;
    hi = pinnedToEnd ? scheduleEnd : mx;
    if (pinnedFromStart && empty()) hi = std::max(hi, lo);
  }

  /// Extends across loop intervals where the value crosses the iteration
  /// boundary. Returns true when anything changed.
  bool extendForLoop(unsigned s, unsigned e) {
    const bool touchesInterval = lo <= e && hi >= s;
    if (!touchesInterval) return false;

    bool insideAccess = false;
    unsigned firstInWrite = static_cast<unsigned>(-1);
    unsigned firstInRead = static_cast<unsigned>(-1);
    bool outsideAccess = pinnedFromStart && s > 0;
    for (unsigned c : writes) {
      if (c >= s && c <= e) {
        insideAccess = true;
        firstInWrite = std::min(firstInWrite, c);
      } else {
        outsideAccess = true;
      }
    }
    for (unsigned c : reads) {
      if (c >= s && c <= e) {
        insideAccess = true;
        firstInRead = std::min(firstInRead, c);
      } else {
        outsideAccess = true;
      }
    }
    if (pinnedToEnd && e + 1 > 0) outsideAccess = true;
    if (!insideAccess) {
      // The lifetime spans the interval without accessing it (value parked
      // across the loop): it must survive the whole interval anyway; the
      // base range already covers it.
      return false;
    }
    const bool wraps =
        outsideAccess ||                       // crosses the boundary
        firstInWrite == static_cast<unsigned>(-1) ||  // never written inside
        firstInRead < firstInWrite;            // read previous iteration
    if (!wraps) return false;
    bool changed = false;
    if (lo > s) {
      lo = s;
      changed = true;
    }
    if (hi < e) {
      hi = e;
      changed = true;
    }
    return changed;
  }
};

/// Classic left-edge interval packing; returns assignments and count.
std::pair<std::vector<unsigned>, unsigned> leftEdge(
    const std::vector<Usage>& usages) {
  std::vector<unsigned> order;
  for (unsigned i = 0; i < usages.size(); ++i)
    if (!usages[i].empty() || usages[i].pinnedFromStart) order.push_back(i);
  std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
    if (usages[a].lo != usages[b].lo) return usages[a].lo < usages[b].lo;
    return a < b;
  });

  std::vector<unsigned> assignment(usages.size(), 0);
  std::vector<unsigned> physEnd;  // last cycle each physical register is busy
  for (unsigned i : order) {
    bool placed = false;
    for (unsigned p = 0; p < physEnd.size(); ++p)
      if (physEnd[p] < usages[i].lo) {
        assignment[i] = p;
        physEnd[p] = usages[i].hi;
        placed = true;
        break;
      }
    if (!placed) {
      assignment[i] = static_cast<unsigned>(physEnd.size());
      physEnd.push_back(usages[i].hi);
    }
  }
  return {assignment, static_cast<unsigned>(physEnd.size())};
}

}  // namespace

RegAllocation allocateRegisters(const Schedule& sched,
                                const Composition& comp) {
  const unsigned numPEs = comp.numPEs();
  const unsigned scheduleEnd = sched.length == 0 ? 0 : sched.length - 1;

  std::vector<std::vector<Usage>> rf(numPEs);
  for (PEId p = 0; p < numPEs; ++p) rf[p].resize(sched.vregsPerPE[p]);
  std::vector<Usage> cbox(sched.cboxSlotsUsed);

  for (const ScheduledOp& op : sched.ops) {
    if (op.writesDest) rf[op.pe][op.destVreg].writes.push_back(op.lastCycle());
    for (const OperandSource& src : op.src) {
      if (src.kind == OperandSource::Kind::Own)
        rf[op.pe][src.vreg].reads.push_back(op.start);
      else if (src.kind == OperandSource::Kind::Route)
        rf[src.srcPE][src.vreg].reads.push_back(op.start);
    }
    if (op.pred) cbox[op.pred->slot].reads.push_back(op.start);
  }
  for (const CBoxOp& op : sched.cboxOps) {
    cbox[op.writeSlot].writes.push_back(op.time);
    for (const CBoxOp::Input& in : op.inputs)
      if (in.kind == CBoxOp::Input::Kind::Stored)
        cbox[in.slot].reads.push_back(op.time);
  }
  for (const BranchOp& b : sched.branches)
    if (b.conditional) cbox[b.pred.slot].reads.push_back(b.time);

  for (const LiveBinding& lb : sched.liveIns)
    rf[lb.pe][lb.vreg].pinnedFromStart = true;
  for (const LiveBinding& lb : sched.liveOuts)
    rf[lb.pe][lb.vreg].pinnedToEnd = true;
  // Variable homes hold observable state from cycle 0: their predicated
  // writes may be suppressed, so the pre-write (zero-initialized) content
  // can be read later — never reuse a home's register before its first
  // write (the §V-B predication model makes homes whole-run resources).
  for (const LiveBinding& lb : sched.varHomes)
    rf[lb.pe][lb.vreg].pinnedFromStart = true;

  auto settle = [&](std::vector<Usage>& usages) {
    for (Usage& u : usages)
      if (!u.empty() || u.pinnedFromStart) u.computeBase(scheduleEnd);
    bool changed = true;
    while (changed) {
      changed = false;
      for (Usage& u : usages) {
        if (u.empty() && !u.pinnedFromStart) continue;
        for (const LoopInterval& li : sched.loops)
          changed |= u.extendForLoop(li.start, li.end);
      }
    }
  };
  for (PEId p = 0; p < numPEs; ++p) settle(rf[p]);
  settle(cbox);

  RegAllocation alloc;
  alloc.vregToPhys.resize(numPEs);
  alloc.physRegsUsed.resize(numPEs);
  for (PEId p = 0; p < numPEs; ++p) {
    auto [assignment, count] = leftEdge(rf[p]);
    if (count > comp.pe(p).regfileSize())
      throw Error("register allocation needs " + std::to_string(count) +
                  " registers on PE " + std::to_string(p) + " (" +
                  comp.pe(p).name() + " has " +
                  std::to_string(comp.pe(p).regfileSize()) + ")");
    alloc.vregToPhys[p] = std::move(assignment);
    alloc.physRegsUsed[p] = count;
  }
  auto [slotAssign, slotCount] = leftEdge(cbox);
  if (slotCount > comp.cboxSlots())
    throw Error("condition allocation needs " + std::to_string(slotCount) +
                " C-Box slots (composition has " +
                std::to_string(comp.cboxSlots()) +
                ") — too many parallel branches");
  alloc.slotToPhys = std::move(slotAssign);
  alloc.cboxSlotsUsed = slotCount;
  return alloc;
}

Schedule applyAllocation(const Schedule& sched, const RegAllocation& alloc) {
  Schedule out = sched;
  for (ScheduledOp& op : out.ops) {
    if (op.writesDest) op.destVreg = alloc.vregToPhys[op.pe][op.destVreg];
    for (OperandSource& src : op.src) {
      if (src.kind == OperandSource::Kind::Own)
        src.vreg = alloc.vregToPhys[op.pe][src.vreg];
      else if (src.kind == OperandSource::Kind::Route)
        src.vreg = alloc.vregToPhys[src.srcPE][src.vreg];
    }
    if (op.pred) op.pred->slot = alloc.slotToPhys[op.pred->slot];
  }
  for (CBoxOp& op : out.cboxOps) {
    op.writeSlot = alloc.slotToPhys[op.writeSlot];
    for (CBoxOp::Input& in : op.inputs)
      if (in.kind == CBoxOp::Input::Kind::Stored)
        in.slot = alloc.slotToPhys[in.slot];
  }
  for (BranchOp& b : out.branches)
    if (b.conditional) b.pred.slot = alloc.slotToPhys[b.pred.slot];
  for (LiveBinding& lb : out.liveIns) lb.vreg = alloc.vregToPhys[lb.pe][lb.vreg];
  for (LiveBinding& lb : out.liveOuts)
    lb.vreg = alloc.vregToPhys[lb.pe][lb.vreg];
  for (LiveBinding& lb : out.varHomes)
    lb.vreg = alloc.vregToPhys[lb.pe][lb.vreg];
  for (PEId p = 0; p < out.vregsPerPE.size(); ++p)
    out.vregsPerPE[p] = alloc.physRegsUsed[p];
  out.cboxSlotsUsed = alloc.cboxSlotsUsed;
  return out;
}

}  // namespace cgra
