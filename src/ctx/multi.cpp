#include "ctx/multi.hpp"

#include <algorithm>

namespace cgra {

PackedSchedules packSchedules(const std::vector<Schedule>& schedules,
                              const Composition& comp) {
  if (schedules.empty()) throw Error("packSchedules: no schedules");

  PackedSchedules out;
  out.merged.vregsPerPE.assign(comp.numPEs(), 0);
  out.merged.cboxSlotsUsed = 0;

  unsigned offset = 0;
  for (const Schedule& virt : schedules) {
    const RegAllocation alloc = allocateRegisters(virt, comp);
    Schedule phys = applyAllocation(virt, alloc);

    SchedulePlacement placement;
    placement.startCcnt = offset;
    placement.length = phys.length;
    placement.liveIns = phys.liveIns;
    placement.liveOuts = phys.liveOuts;

    for (ScheduledOp op : phys.ops) {
      op.start += offset;
      out.merged.ops.push_back(std::move(op));
    }
    for (CBoxOp op : phys.cboxOps) {
      op.time += offset;
      out.merged.cboxOps.push_back(std::move(op));
    }
    for (BranchOp b : phys.branches) {
      b.time += offset;
      b.target += offset;
      out.merged.branches.push_back(b);
    }
    for (LoopInterval li : phys.loops) {
      li.start += offset;
      li.end += offset;
      out.merged.loops.push_back(li);
    }
    for (PEId p = 0; p < comp.numPEs(); ++p)
      out.merged.vregsPerPE[p] =
          std::max(out.merged.vregsPerPE[p], phys.vregsPerPE[p]);
    out.merged.cboxSlotsUsed =
        std::max(out.merged.cboxSlotsUsed, phys.cboxSlotsUsed);

    out.placements.push_back(std::move(placement));
    offset += phys.length;
  }
  out.merged.length = offset;
  if (out.merged.length > comp.contextMemoryLength())
    throw Error("packSchedules: combined length " +
                std::to_string(out.merged.length) + " exceeds context memory " +
                std::to_string(comp.contextMemoryLength()));
  return out;
}

ContextImages encodePacked(const PackedSchedules& packed,
                           const Composition& comp) {
  return encodePhysical(packed.merged, comp);
}

}  // namespace cgra
