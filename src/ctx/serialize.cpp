#include "ctx/serialize.hpp"

#include <sstream>

namespace cgra {

std::string contextWordToHex(const BitVector& bits) {
  const std::size_t digits = (bits.size() + 3) / 4;
  std::string out(digits, '0');
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (!bits.get(i)) continue;
    const std::size_t digit = digits - 1 - i / 4;
    const unsigned nibbleBit = static_cast<unsigned>(i % 4);
    const char c = out[digit];
    const unsigned v =
        static_cast<unsigned>(c <= '9' ? c - '0' : c - 'a' + 10) |
        (1u << nibbleBit);
    out[digit] = static_cast<char>(v < 10 ? '0' + v : 'a' + (v - 10));
  }
  return out;
}

BitVector contextWordFromHex(const std::string& hex, unsigned width) {
  const std::size_t digits = (width + 3) / 4;
  if (hex.size() != digits)
    throw Error("context word hex length " + std::to_string(hex.size()) +
                " does not match width " + std::to_string(width));
  BitVector bits(width);
  for (unsigned i = 0; i < width; ++i) {
    const char c = hex[digits - 1 - i / 4];
    unsigned v;
    if (c >= '0' && c <= '9')
      v = static_cast<unsigned>(c - '0');
    else if (c >= 'a' && c <= 'f')
      v = static_cast<unsigned>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F')
      v = static_cast<unsigned>(c - 'A' + 10);
    else
      throw Error("invalid hex digit in context word");
    if ((v >> (i % 4)) & 1u) bits.set(i, true);
  }
  return bits;
}

namespace {

json::Value memoryToJson(const std::vector<BitVector>& contexts,
                         unsigned width) {
  json::Object obj;
  obj["width"] = static_cast<std::int64_t>(width);
  json::Array words;
  for (const BitVector& ctx : contexts) words.emplace_back(contextWordToHex(ctx));
  obj["contexts"] = std::move(words);
  return obj;
}

std::vector<BitVector> memoryFromJson(const json::Value& v, unsigned& width,
                                      unsigned expectedCount,
                                      const std::string& what) {
  const json::Object& obj = v.asObject();
  const std::int64_t w = obj.at("width").asInt();
  if (w <= 0 || w > 4096) throw Error(what + ": width out of range");
  width = static_cast<unsigned>(w);
  const json::Array& words = obj.at("contexts").asArray();
  if (words.size() != expectedCount)
    throw Error(what + ": expected " + std::to_string(expectedCount) +
                " contexts, got " + std::to_string(words.size()));
  std::vector<BitVector> out;
  out.reserve(words.size());
  for (const json::Value& word : words)
    out.push_back(contextWordFromHex(word.asString(), width));
  return out;
}

json::Value bindingsToJson(const std::vector<LiveBinding>& bindings) {
  json::Array arr;
  for (const LiveBinding& lb : bindings) {
    json::Object obj;
    obj["var"] = static_cast<std::int64_t>(lb.var);
    obj["pe"] = static_cast<std::int64_t>(lb.pe);
    obj["reg"] = static_cast<std::int64_t>(lb.vreg);
    arr.emplace_back(std::move(obj));
  }
  return arr;
}

std::vector<LiveBinding> bindingsFromJson(const json::Value& v) {
  std::vector<LiveBinding> out;
  for (const json::Value& entry : v.asArray()) {
    const json::Object& obj = entry.asObject();
    LiveBinding lb;
    lb.var = static_cast<VarId>(obj.at("var").asInt());
    lb.pe = static_cast<PEId>(obj.at("pe").asInt());
    lb.vreg = static_cast<unsigned>(obj.at("reg").asInt());
    out.push_back(lb);
  }
  return out;
}

}  // namespace

json::Value contextImagesToJson(const ContextImages& images) {
  json::Object doc;
  doc["format"] = "cgra-contexts-v1";
  doc["length"] = static_cast<std::int64_t>(images.length);
  doc["cbox_slots_used"] = static_cast<std::int64_t>(images.cboxSlotsUsed);

  json::Array pes;
  for (PEId p = 0; p < images.peContexts.size(); ++p) {
    json::Value mem = memoryToJson(images.peContexts[p], images.peWidths[p]);
    mem.asObject()["regs_used"] =
        static_cast<std::int64_t>(images.physRegsUsed[p]);
    pes.push_back(std::move(mem));
  }
  doc["pe_memories"] = std::move(pes);
  doc["cbox_memory"] = memoryToJson(images.cboxContexts, images.cboxWidth);
  doc["ccu_memory"] = memoryToJson(images.ccuContexts, images.ccuWidth);
  doc["live_ins"] = bindingsToJson(images.liveIns);
  doc["live_outs"] = bindingsToJson(images.liveOuts);
  return doc;
}

ContextImages contextImagesFromJson(const json::Value& doc) {
  const json::Object& obj = doc.asObject();
  if (!obj.contains("format") || obj.at("format").asString() != "cgra-contexts-v1")
    throw Error("context images: unknown format tag");

  ContextImages img;
  const std::int64_t length = obj.at("length").asInt();
  if (length < 0 || length > (1 << 20))
    throw Error("context images: length out of range");
  img.length = static_cast<unsigned>(length);
  img.cboxSlotsUsed =
      static_cast<unsigned>(obj.at("cbox_slots_used").asInt());

  const json::Array& pes = obj.at("pe_memories").asArray();
  img.peContexts.resize(pes.size());
  img.peWidths.resize(pes.size());
  img.physRegsUsed.resize(pes.size());
  for (std::size_t p = 0; p < pes.size(); ++p) {
    img.peContexts[p] = memoryFromJson(pes[p], img.peWidths[p], img.length,
                                       "PE memory " + std::to_string(p));
    img.physRegsUsed[p] =
        static_cast<unsigned>(pes[p].asObject().at("regs_used").asInt());
  }
  img.cboxContexts =
      memoryFromJson(obj.at("cbox_memory"), img.cboxWidth, img.length,
                     "C-Box memory");
  img.ccuContexts = memoryFromJson(obj.at("ccu_memory"), img.ccuWidth,
                                   img.length, "CCU memory");
  img.liveIns = bindingsFromJson(obj.at("live_ins"));
  img.liveOuts = bindingsFromJson(obj.at("live_outs"));
  return img;
}

std::string toMemFile(const std::vector<BitVector>& contexts, unsigned width,
                      const std::string& label) {
  std::ostringstream os;
  os << "// " << label << ": " << contexts.size() << " contexts, " << width
     << " bits each ($readmemh format)\n";
  for (const BitVector& ctx : contexts) os << contextWordToHex(ctx) << '\n';
  return os.str();
}

}  // namespace cgra
