// Multi-schedule context memories (paper §IV-A.3): "Since the context
// memories can potentially hold multiple schedules, it is necessary to
// transfer the initial CCNT of a schedule."
//
// packSchedules places several independently scheduled kernels back to back
// in one shared context memory: each schedule is register-allocated on its
// own (runs never overlap in time and live-ins are re-transferred per
// invocation, so physical registers are freely reused across kernels), all
// context positions and branch targets are shifted by the kernel's start
// CCNT, and the per-kernel live-in/out bindings plus the start CCNT form
// the placement record the host transfers at invocation time (Fig. 6).
#pragma once

#include "ctx/contexts.hpp"
#include "sched/schedule.hpp"

namespace cgra {

/// Invocation record for one kernel inside a packed context memory.
struct SchedulePlacement {
  unsigned startCcnt = 0;  ///< transferred to the CCU before the run
  unsigned length = 0;     ///< run ends when the CCNT leaves the window
  std::vector<LiveBinding> liveIns;   ///< physical bindings
  std::vector<LiveBinding> liveOuts;  ///< physical bindings
};

/// A merged physical schedule plus the per-kernel placements.
struct PackedSchedules {
  Schedule merged;  ///< physical registers; empty global live bindings
  std::vector<SchedulePlacement> placements;
};

/// Packs virtual schedules into one context-memory image set; throws
/// cgra::Error when the combined length exceeds the composition's context
/// memory or any kernel exceeds its register/C-Box capacity.
PackedSchedules packSchedules(const std::vector<Schedule>& schedules,
                              const Composition& comp);

/// Convenience: encode the merged schedule (placements carry the bindings).
ContextImages encodePacked(const PackedSchedules& packed,
                           const Composition& comp);

}  // namespace cgra
