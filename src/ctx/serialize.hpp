// Context-image serialization: the deployable artifact of the toolflow.
//
// In the real system the generated contexts are loaded into the per-PE,
// C-Box and CCU context memories (BRAMs) before the first invocation and the
// live-in/out bindings are carried by tokens. This module persists exactly
// that package — widths, per-context hex words and bindings — as a JSON
// document (the paper's interchange format of choice, §IV-B), so a schedule
// can be generated once and re-run or inspected later; decode restores a
// bit-identical ContextImages.
#pragma once

#include "ctx/contexts.hpp"
#include "json/json.hpp"

namespace cgra {

/// Serializes images (bit-exact round trip guaranteed with fromJson).
json::Value contextImagesToJson(const ContextImages& images);

/// Parses a document produced by contextImagesToJson; throws cgra::Error on
/// malformed or inconsistent input (width/count mismatches).
ContextImages contextImagesFromJson(const json::Value& doc);

/// Hex string of one context word, LSB-first bit order, zero-padded to the
/// memory width (exposed for tests and for the Verilog $readmemh flow).
std::string contextWordToHex(const BitVector& bits);
BitVector contextWordFromHex(const std::string& hex, unsigned width);

/// Emits a Verilog $readmemh-compatible memory file for one context memory
/// (one hex word per line, comment header).
std::string toMemFile(const std::vector<BitVector>& contexts, unsigned width,
                      const std::string& label);

}  // namespace cgra
