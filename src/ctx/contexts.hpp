// Binary context generation (paper §IV-B, §V-I, Fig. 10): after register
// allocation the schedule is encoded into per-PE context memory images plus
// C-Box and CCU context streams. Field widths are minimized per PE from the
// composition (the paper's "bit-mask"): register addresses use the PE's RF
// depth, source selectors the PE's fan-in, condition slots the C-Box size.
// Contexts are encoded field-sequentially and padded to the widest context
// of their memory; decoding reverses the process exactly, which the test
// suite exploits for bit-level round-trip checks and for running the
// simulator on *decoded* images (context-accurate execution).
#pragma once

#include "ctx/regalloc.hpp"
#include "sched/schedule.hpp"
#include "support/bitvector.hpp"

namespace cgra {

/// Encoded context memories for one schedule on one composition.
struct ContextImages {
  unsigned length = 0;  ///< contexts per memory

  std::vector<std::vector<BitVector>> peContexts;  ///< [pe][cycle]
  std::vector<BitVector> cboxContexts;             ///< [cycle]
  std::vector<BitVector> ccuContexts;              ///< [cycle]

  std::vector<unsigned> peWidths;  ///< padded width per PE memory
  unsigned cboxWidth = 0;
  unsigned ccuWidth = 0;

  // Invocation metadata (token-transferred in the real system, Fig. 6).
  std::vector<LiveBinding> liveIns;
  std::vector<LiveBinding> liveOuts;
  std::vector<unsigned> physRegsUsed;  ///< per PE (for simulator RF sizing)
  unsigned cboxSlotsUsed = 0;

  /// Total bits over all context memories (resource discussion of §VI-B).
  std::size_t totalBits() const;
};

/// Encodes a schedule whose registers are still virtual: allocation is
/// applied internally (left edge, §V-I). Throws cgra::Error when the
/// schedule exceeds the composition's context memory length.
ContextImages generateContexts(const Schedule& sched, const Composition& comp);

/// Encodes a schedule whose registers are already physical (e.g. a pack of
/// several schedules sharing one context memory, ctx/multi.hpp). The
/// caller guarantees register/slot indices fit the composition.
ContextImages encodePhysical(const Schedule& physical, const Composition& comp);

/// Decodes context images back into an executable schedule (physical
/// registers). The result carries no loop metadata — exactly what the
/// hardware knows — but runs identically on the simulator.
Schedule decodeContexts(const ContextImages& images, const Composition& comp);

}  // namespace cgra
