#include "ctx/contexts.hpp"

#include <algorithm>
#include <map>

namespace cgra {

namespace {

/// Field widths for one PE's context encoding.
struct PEFieldWidths {
  unsigned opcode = 5;
  unsigned duration = 4;
  unsigned ownReg = 0;    ///< this PE's RF address
  unsigned srcSel = 0;    ///< index into the PE's source list
  unsigned routeReg = 0;  ///< RF address within any source PE
  unsigned predSlot = 0;
};

PEFieldWidths widthsFor(const Composition& comp, PEId pe) {
  PEFieldWidths w;
  w.ownReg = bitsFor(comp.pe(pe).regfileSize());
  const auto& sources = comp.interconnect().sources(pe);
  w.srcSel = bitsFor(std::max<std::size_t>(1, sources.size()));
  unsigned maxSrcRf = 1;
  for (PEId q : sources)
    maxSrcRf = std::max(maxSrcRf, comp.pe(q).regfileSize());
  w.routeReg = bitsFor(maxSrcRf);
  w.predSlot = bitsFor(comp.cboxSlots());
  return w;
}

unsigned sourceIndex(const Composition& comp, PEId pe, PEId src) {
  const auto& sources = comp.interconnect().sources(pe);
  for (unsigned i = 0; i < sources.size(); ++i)
    if (sources[i] == src) return i;
  throw Error("encode: PE " + std::to_string(src) + " is not a source of PE " +
              std::to_string(pe));
}

void encodeOp(BitPacker& bp, const ScheduledOp& op, const Composition& comp,
              const PEFieldWidths& w) {
  bp.writeBool(true);  // op present
  bp.write(static_cast<unsigned>(op.op), w.opcode);
  bp.write(op.duration, w.duration);
  const unsigned nOperands = operandCount(op.op);
  for (unsigned i = 0; i < nOperands; ++i) {
    const OperandSource& src = op.src[i];
    bp.write(static_cast<unsigned>(src.kind), 2);
    switch (src.kind) {
      case OperandSource::Kind::None: break;
      case OperandSource::Kind::Own:
        bp.write(src.vreg, w.ownReg);
        break;
      case OperandSource::Kind::Route:
        bp.write(sourceIndex(comp, op.pe, src.srcPE), w.srcSel);
        bp.write(src.vreg, w.routeReg);
        break;
      case OperandSource::Kind::Imm:
        bp.write(static_cast<std::uint32_t>(src.imm), 32);
        break;
    }
  }
  bp.writeBool(op.writesDest);
  if (op.writesDest) bp.write(op.destVreg, w.ownReg);
  bp.writeBool(op.pred.has_value());
  if (op.pred) {
    bp.write(op.pred->slot, w.predSlot);
    bp.writeBool(op.pred->polarity);
  }
}

ScheduledOp decodeOp(BitReader& br, PEId pe, unsigned time,
                     const Composition& comp, const PEFieldWidths& w) {
  ScheduledOp op;
  op.pe = pe;
  op.start = time;
  op.op = static_cast<Op>(br.read(w.opcode));
  op.duration = static_cast<unsigned>(br.read(w.duration));
  const unsigned nOperands = operandCount(op.op);
  for (unsigned i = 0; i < nOperands; ++i) {
    OperandSource& src = op.src[i];
    src.kind = static_cast<OperandSource::Kind>(br.read(2));
    switch (src.kind) {
      case OperandSource::Kind::None: break;
      case OperandSource::Kind::Own:
        src.vreg = static_cast<unsigned>(br.read(w.ownReg));
        break;
      case OperandSource::Kind::Route: {
        const unsigned idx = static_cast<unsigned>(br.read(w.srcSel));
        const auto& sources = comp.interconnect().sources(pe);
        if (idx >= sources.size())
          throw Error("decode: source selector out of range on PE " +
                      std::to_string(pe));
        src.srcPE = sources[idx];
        src.vreg = static_cast<unsigned>(br.read(w.routeReg));
        break;
      }
      case OperandSource::Kind::Imm:
        src.imm = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(br.read(32)));
        break;
    }
  }
  op.writesDest = br.readBool();
  if (op.writesDest) op.destVreg = static_cast<unsigned>(br.read(w.ownReg));
  if (br.readBool()) {
    PredRef pred;
    pred.slot = static_cast<unsigned>(br.read(w.predSlot));
    pred.polarity = br.readBool();
    op.pred = pred;
  }
  op.emitsStatus = producesStatus(op.op);
  return op;
}

BitVector padTo(const BitVector& bits, unsigned width) {
  BitVector out = bits;
  while (out.size() < width) out.pushBack(false);
  return out;
}

}  // namespace

std::size_t ContextImages::totalBits() const {
  std::size_t bits = 0;
  for (PEId p = 0; p < peContexts.size(); ++p)
    bits += static_cast<std::size_t>(peWidths[p]) * peContexts[p].size();
  bits += static_cast<std::size_t>(cboxWidth) * cboxContexts.size();
  bits += static_cast<std::size_t>(ccuWidth) * ccuContexts.size();
  return bits;
}

ContextImages generateContexts(const Schedule& virtualSched,
                               const Composition& comp) {
  const RegAllocation alloc = allocateRegisters(virtualSched, comp);
  return encodePhysical(applyAllocation(virtualSched, alloc), comp);
}

ContextImages encodePhysical(const Schedule& sched, const Composition& comp) {
  if (sched.length > comp.contextMemoryLength())
    throw Error("schedule length " + std::to_string(sched.length) +
                " exceeds context memory length " +
                std::to_string(comp.contextMemoryLength()));

  ContextImages img;
  img.length = sched.length;
  img.liveIns = sched.liveIns;
  img.liveOuts = sched.liveOuts;
  img.physRegsUsed = sched.vregsPerPE;
  img.cboxSlotsUsed = sched.cboxSlotsUsed;

  const unsigned cboxSlotBits = bitsFor(comp.cboxSlots());
  const unsigned targetBits = bitsFor(std::max(1u, sched.length));

  // Per-PE contexts.
  img.peContexts.resize(comp.numPEs());
  img.peWidths.resize(comp.numPEs());
  for (PEId p = 0; p < comp.numPEs(); ++p) {
    const PEFieldWidths w = widthsFor(comp, p);
    std::map<unsigned, const ScheduledOp*> byStart;
    for (const ScheduledOp& op : sched.ops)
      if (op.pe == p) {
        if (byStart.contains(op.start))
          throw Error("encode: two ops start on PE " + std::to_string(p) +
                      " at t" + std::to_string(op.start));
        byStart[op.start] = &op;
      }
    std::vector<BitVector> raw(sched.length);
    unsigned width = 1;
    for (unsigned t = 0; t < sched.length; ++t) {
      BitPacker bp;
      if (const auto it = byStart.find(t); it != byStart.end())
        encodeOp(bp, *it->second, comp, w);
      else
        bp.writeBool(false);  // idle context
      raw[t] = bp.bits();
      width = std::max(width, static_cast<unsigned>(raw[t].size()));
    }
    img.peWidths[p] = width;
    img.peContexts[p].reserve(sched.length);
    for (const BitVector& bits : raw)
      img.peContexts[p].push_back(padTo(bits, width));
  }

  // C-Box contexts.
  {
    std::map<unsigned, const CBoxOp*> byTime;
    for (const CBoxOp& op : sched.cboxOps) {
      if (byTime.contains(op.time))
        throw Error("encode: two C-Box ops at t" + std::to_string(op.time));
      byTime[op.time] = &op;
    }
    std::vector<BitVector> raw(sched.length);
    unsigned width = 1;
    for (unsigned t = 0; t < sched.length; ++t) {
      BitPacker bp;
      if (const auto it = byTime.find(t); it != byTime.end()) {
        const CBoxOp& op = *it->second;
        bp.writeBool(true);
        bp.write(op.inputs.size(), 2);
        for (const CBoxOp::Input& in : op.inputs) {
          bp.writeBool(in.kind == CBoxOp::Input::Kind::Stored);
          if (in.kind == CBoxOp::Input::Kind::Stored)
            bp.write(in.slot, cboxSlotBits);
          bp.writeBool(in.polarity);
        }
        bp.write(static_cast<unsigned>(op.logic), 2);
        bp.write(op.writeSlot, cboxSlotBits);
      } else {
        bp.writeBool(false);
      }
      raw[t] = bp.bits();
      width = std::max(width, static_cast<unsigned>(raw[t].size()));
    }
    img.cboxWidth = width;
    for (const BitVector& bits : raw) img.cboxContexts.push_back(padTo(bits, width));
  }

  // CCU contexts.
  {
    std::map<unsigned, const BranchOp*> byTime;
    for (const BranchOp& b : sched.branches) {
      if (byTime.contains(b.time))
        throw Error("encode: two branches at t" + std::to_string(b.time));
      byTime[b.time] = &b;
    }
    std::vector<BitVector> raw(sched.length);
    unsigned width = 1;
    for (unsigned t = 0; t < sched.length; ++t) {
      BitPacker bp;
      if (const auto it = byTime.find(t); it != byTime.end()) {
        const BranchOp& b = *it->second;
        bp.writeBool(true);
        bp.write(b.target, targetBits);
        bp.writeBool(b.conditional);
        if (b.conditional) {
          bp.write(b.pred.slot, cboxSlotBits);
          bp.writeBool(b.pred.polarity);
        }
      } else {
        bp.writeBool(false);
      }
      raw[t] = bp.bits();
      width = std::max(width, static_cast<unsigned>(raw[t].size()));
    }
    img.ccuWidth = width;
    for (const BitVector& bits : raw) img.ccuContexts.push_back(padTo(bits, width));
  }

  return img;
}

Schedule decodeContexts(const ContextImages& img, const Composition& comp) {
  Schedule out;
  out.length = img.length;
  out.liveIns = img.liveIns;
  out.liveOuts = img.liveOuts;
  out.vregsPerPE = img.physRegsUsed;
  out.cboxSlotsUsed = img.cboxSlotsUsed;

  const unsigned cboxSlotBits = bitsFor(comp.cboxSlots());
  const unsigned targetBits = bitsFor(std::max(1u, img.length));

  for (PEId p = 0; p < comp.numPEs(); ++p) {
    const PEFieldWidths w = widthsFor(comp, p);
    for (unsigned t = 0; t < img.length; ++t) {
      BitReader br(img.peContexts[p][t]);
      if (!br.readBool()) continue;
      out.ops.push_back(decodeOp(br, p, t, comp, w));
    }
  }

  for (unsigned t = 0; t < img.length; ++t) {
    BitReader br(img.cboxContexts[t]);
    if (!br.readBool()) continue;
    CBoxOp op;
    op.time = t;
    const unsigned n = static_cast<unsigned>(br.read(2));
    for (unsigned i = 0; i < n; ++i) {
      CBoxOp::Input in;
      in.kind = br.readBool() ? CBoxOp::Input::Kind::Stored
                              : CBoxOp::Input::Kind::Status;
      if (in.kind == CBoxOp::Input::Kind::Stored)
        in.slot = static_cast<unsigned>(br.read(cboxSlotBits));
      in.polarity = br.readBool();
      op.inputs.push_back(in);
    }
    op.logic = static_cast<CBoxOp::Logic>(br.read(2));
    op.writeSlot = static_cast<unsigned>(br.read(cboxSlotBits));
    out.cboxOps.push_back(op);
  }

  for (unsigned t = 0; t < img.length; ++t) {
    BitReader br(img.ccuContexts[t]);
    if (!br.readBool()) continue;
    BranchOp b;
    b.time = t;
    b.target = static_cast<unsigned>(br.read(targetBits));
    b.conditional = br.readBool();
    if (b.conditional) {
      b.pred.slot = static_cast<unsigned>(br.read(cboxSlotBits));
      b.pred.polarity = br.readBool();
    }
    out.branches.push_back(b);
  }

  return out;
}

}  // namespace cgra
