// Register and condition-slot allocation (paper §V-I): "For both RF and
// C-Box allocation the left edge algorithm is used. To determine variable
// lifetimes the loops have to be taken into account. A value that is read in
// an inner loop needs an extended lifetime until the end of that loop. The
// same holds for the lifetimes of condition bits."
//
// The scheduler emits virtual registers (one per value instance per PE) and
// virtual condition slots; this module compacts them onto physical registers
// and slots, checking the composition's capacities. Lifetime rules:
//  * base lifetime spans from the first write commit to the last read;
//  * live-in homes are live from cycle 0, live-out homes to the run's end;
//  * if a register is accessed inside a loop interval and its value crosses
//    the iteration boundary (accessed outside too, read before the first
//    in-loop write, or never written inside), its lifetime covers the whole
//    interval — iterated to a fixed point for nested loops.
#pragma once

#include "sched/schedule.hpp"

namespace cgra {

/// Result of left-edge allocation.
struct RegAllocation {
  /// vregToPhys[pe][vreg] = physical register (per PE).
  std::vector<std::vector<unsigned>> vregToPhys;
  /// Physical registers used per PE ("Max. RF entries" row of Table I).
  std::vector<unsigned> physRegsUsed;
  /// slotToPhys[virtualSlot] = physical C-Box slot.
  std::vector<unsigned> slotToPhys;
  unsigned cboxSlotsUsed = 0;

  unsigned maxRfEntries() const {
    unsigned m = 0;
    for (unsigned n : physRegsUsed) m = std::max(m, n);
    return m;
  }
};

/// Runs left-edge allocation; throws cgra::Error when a PE's register file
/// or the C-Box condition memory is too small.
RegAllocation allocateRegisters(const Schedule& sched, const Composition& comp);

/// Returns a copy of the schedule with virtual registers and condition slots
/// rewritten to their physical assignments.
Schedule applyAllocation(const Schedule& sched, const RegAllocation& alloc);

}  // namespace cgra
