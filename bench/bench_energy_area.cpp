// Reproduces the paper's §VI-C qualitative claim: "supporting irregular and
// inhomogeneous structures can potentially save area on the chip and most
// likely energy" — composition F (only two multiplier PEs) vs D (same rich
// interconnect, all PEs multiply): cycles, simulated per-op energy, DSP
// area; plus an energy series over all evaluated compositions.
#include "bench_common.hpp"

int main() {
  using namespace cgra;
  using namespace cgra::bench;

  std::cout << "== Energy & area: inhomogeneity pays (paper §VI-C) ==\n";
  BenchReport report("energy_area");
  const AdpcmSetup setup = AdpcmSetup::make();

  TextTable table({"Composition", "Cycles", "Energy (rel)", "Energy/sample",
                   "DSPs", "LUT-logic"});
  for (const auto& entry : {std::make_pair(std::string("D (homogeneous ops)"),
                                           makeIrregular('D')),
                            std::make_pair(std::string("F (2 multiplier PEs)"),
                                           makeIrregular('F'))}) {
    const AdpcmRun run = runAdpcmOn(setup, entry.second);
    table.addRow({entry.first, fmtKilo(run.cycles), fmt(run.energy, 0),
                  fmt(run.energy / kAdpcmSamples, 1),
                  std::to_string(run.resources.dsp),
                  fmt(run.resources.lutLogic, 0)});
  }
  table.print(std::cout);
  std::cout << "\npaper: F is 'only marginally slower ... but the utilization "
               "of DSPs decreases by 75%'\n\n";

  std::cout << "energy across all evaluated compositions:\n";
  TextTable series({"Composition", "Cycles", "Energy (rel)", "Idle share"});
  auto addRow = [&](const std::string& name, const Composition& comp) {
    const AdpcmRun run = runAdpcmOn(setup, comp);
    report.metric("cycles_" + comp.name(), run.cycles);
    report.metric("energy_" + comp.name(), run.energy);
    // Idle share: fraction of PE-cycles spent on NOP (no issued op).
    const double busy = run.energy / (defaultEnergy(Op::IADD) *
                                      static_cast<double>(run.cycles) *
                                      comp.numPEs());
    series.addRow({name, fmtKilo(run.cycles), fmt(run.energy, 0),
                   fmt(100.0 * (1.0 - std::min(1.0, busy)), 0) + "%"});
  };
  for (unsigned n : meshSizes()) addRow(std::to_string(n) + " PEs", makeMesh(n));
  for (char c : irregularLabels())
    addRow(std::string("8 PEs ") + c, makeIrregular(c));
  series.print(std::cout);
  std::cout << "\nshape: dynamic (per-op) energy is nearly composition-"
               "independent, but the idle share grows with the array — the "
               "static/clocking energy of idle PEs is what tailored, smaller "
               "or operator-trimmed compositions save (the paper's §VI-C "
               "argument; F additionally cuts 75% of the DSP area)\n";
  report.write();
  return 0;
}
