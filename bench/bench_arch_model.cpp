// Per-job setup cost through the shared ArchModel: a 64-job sweep over ONE
// composition must build the model's Floyd–Warshall / support tables
// exactly once and amortize it across every job — the guarantee the pass
// pipeline's `ArchModel::get` memoization provides. The bench gates the
// deterministic counters (builds performed, failures, dedup) via
// tools/bench_compare.py; wall-clock (one standalone model build vs. the
// per-job setup that remains) lands in the warn-only timings section.
#include <algorithm>
#include <chrono>
#include <deque>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "arch/arch_model.hpp"
#include "bench_common.hpp"
#include "sched/sweep.hpp"

namespace {

using namespace cgra;
using namespace cgra::bench;

constexpr int kRounds = 3;
constexpr unsigned kJobs = 64;

double msSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  // 64 jobs on one mesh9: four kernel families. Each job gets a distinct
  // (ample) context budget so every job key is unique — the sweep really
  // schedules 64 times instead of deduping structurally equal kernels, and
  // the per-job setup figure averages over all of them.
  const Composition comp = makeMesh(9);
  const Cdfg adpcm = kir::lowerToCdfg(apps::makeAdpcm(8, 1).fn).graph;
  const Cdfg gcd = kir::lowerToCdfg(apps::makeGcd(546, 2394).fn).graph;
  const Cdfg dot = kir::lowerToCdfg(apps::makeDotProduct(4, 1).fn).graph;
  const Cdfg fir = kir::lowerToCdfg(apps::makeFir(8, 3).fn).graph;

  std::vector<SweepJob> jobs;
  for (unsigned i = 0; i < kJobs; ++i) {
    const Cdfg* g = nullptr;
    const char* name = "";
    switch (i % 4) {
      case 0: g = &adpcm; name = "adpcm"; break;
      case 1: g = &gcd; name = "gcd"; break;
      case 2: g = &dot; name = "dot"; break;
      default: g = &fir; name = "fir"; break;
    }
    SchedulerOptions options;
    options.maxContexts = 100 + i;  // unique key, budget far above any need
    jobs.push_back(
        SweepJob{&comp, g, std::string(name) + std::to_string(i), options});
  }

  // Standalone model cost: what every job used to pay per run before the
  // shared model (Floyd–Warshall + per-opcode support + digest).
  double modelBuildMs = std::numeric_limits<double>::infinity();
  for (int r = 0; r < kRounds; ++r) {
    const auto start = std::chrono::steady_clock::now();
    const ArchModel m = ArchModel::build(comp);
    modelBuildMs = std::min(modelBuildMs, msSince(start));
    if (m.numPEs() != comp.numPEs()) return 1;  // keep the build observable
  }

  SweepOptions opts;
  opts.threads = 2;
  opts.keepSchedules = false;

  // First sweep on this composition instance: exactly one build.
  const std::uint64_t buildsBefore = ArchModel::buildsPerformed();
  const SweepReport first = runSweep(jobs, opts);
  const std::uint64_t firstBuilds = ArchModel::buildsPerformed() - buildsBefore;

  double sweepMs = first.wallTimeMs;
  std::uint64_t failures = first.failures;
  std::uint64_t warmBuilds = 0;
  for (int r = 1; r < kRounds; ++r) {
    const std::uint64_t before = ArchModel::buildsPerformed();
    const SweepReport rep = runSweep(jobs, opts);
    warmBuilds += ArchModel::buildsPerformed() - before;
    failures += rep.failures;
    sweepMs = std::min(sweepMs, rep.wallTimeMs);
  }

  const double setupPerJobMs =
      first.aggregate.runs > 0 ? first.aggregate.setupMs / first.aggregate.runs
                               : 0.0;

  std::cout << "jobs: " << jobs.size() << " on " << comp.name()
            << " (deduped " << first.dedupedJobs << ")\n"
            << "model build (standalone): " << modelBuildMs << " ms\n"
            << "model builds in first sweep: " << firstBuilds
            << " (reported " << first.archModelBuilds << ", "
            << first.archModelBuildMs << " ms)\n"
            << "model builds in warm sweeps: " << warmBuilds << "\n"
            << "sweep: " << sweepMs << " ms, per-job setup "
            << setupPerJobMs << " ms\n";

  BenchReport report("arch_model");
  // Deterministic, gated: one build for 64 jobs, none on repeats, no
  // scheduling failures, stable dedup count.
  report.metric("archModelBuildsFirstSweep", firstBuilds);
  report.metric("archModelBuildsWarmSweeps", warmBuilds);
  report.metric("failures", failures);
  report.metric("dedupedJobs", first.dedupedJobs);
  report.metric("jobs", static_cast<std::uint64_t>(jobs.size()));
  // Wall clock: warn-only.
  report.timing("modelBuildMs", modelBuildMs);
  report.timing("sweepWallMs", sweepMs);
  report.timing("setupPerJobMs", setupPerJobMs);
  report.timing("reportedModelBuildMs", first.archModelBuildMs);
  report.info("composition", comp.name());
  report.write();

  if (firstBuilds != 1 || first.archModelBuilds != 1) {
    std::cerr << "FAIL: expected exactly one ArchModel build for the 64-job "
                 "single-composition sweep (got "
              << firstBuilds << ", reported " << first.archModelBuilds
              << ")\n";
    return 1;
  }
  if (warmBuilds != 0) {
    std::cerr << "FAIL: repeated sweeps rebuilt the model " << warmBuilds
              << " time(s)\n";
    return 1;
  }
  if (failures != 0) {
    std::cerr << "FAIL: " << failures << " scheduling failure(s)\n";
    return 1;
  }
  return 0;
}
