// Extension study: PE-count scaling with instruction-level parallelism.
//
// The paper observes (§VI-B) that "more PEs can speed up the application as
// more instructions can be executed concurrently" but that the mono ADPCM
// decoder saturates early. The stereo decoder carries two independent
// decode chains per iteration — roughly double the ILP — so larger arrays
// keep paying off longer. This bench contrasts the two across the Fig. 13
// mesh sizes (cycles and best composition), illustrating when the paper's
// "9 PEs best" regime appears.
#include "bench_common.hpp"
#include "sched/analysis.hpp"

int main() {
  using namespace cgra;
  using namespace cgra::bench;

  std::cout << "== Extension: PE scaling, mono vs stereo ADPCM ==\n";
  BenchReport report("stereo_scaling");

  struct Variant {
    std::string name;
    apps::Workload workload;
  };
  std::vector<Variant> variants;
  variants.push_back({"mono (416 samples)", apps::makeAdpcm(416, 1)});
  variants.push_back(
      {"stereo (208 frames/ch)", apps::makeAdpcmStereo(208, 1)});

  TextTable table({"Workload", "4 PEs", "6 PEs", "8 PEs", "9 PEs", "12 PEs",
                   "16 PEs", "best"});
  for (Variant& v : variants) {
    const kir::Function unrolled = kir::unrollLoops(v.workload.fn, 2, true);
    const Cdfg graph = kir::lowerToCdfg(unrolled).graph;

    std::vector<std::string> row{v.name};
    std::uint64_t best = ~0ull;
    unsigned bestN = 0;
    for (unsigned n : meshSizes()) {
      const Composition comp = makeMesh(n);
      const Scheduler scheduler(comp);
      const ScheduleReport result = scheduler.schedule(ScheduleRequest(graph)).orThrow();
      std::map<VarId, std::int32_t> liveIns;
      for (const LiveBinding& lb : result.schedule.liveIns)
        liveIns[lb.var] = v.workload.initialLocals[lb.var];
      HostMemory heap = v.workload.heap;
      const SimResult r = Simulator(comp, result.schedule).run(liveIns, heap);
      row.push_back(fmtKilo(r.runCycles));
      report.metric("cycles_" + v.name.substr(0, v.name.find(' ')) + "_mesh" +
                        std::to_string(n),
                    r.runCycles);
      if (r.runCycles < best) {
        best = r.runCycles;
        bestN = n;
      }
    }
    row.push_back(std::to_string(bestN) + " PEs");
    table.addRow(row);
  }
  table.print(std::cout);

  // Peak parallelism per mesh, the mechanism behind the scaling.
  std::cout << "\npeak parallelism (ops in flight in one cycle):\n";
  TextTable par({"Workload", "4 PEs", "9 PEs", "16 PEs"});
  for (Variant& v : variants) {
    const kir::Function unrolled = kir::unrollLoops(v.workload.fn, 2, true);
    const Cdfg graph = kir::lowerToCdfg(unrolled).graph;
    std::vector<std::string> row{v.name};
    for (unsigned n : {4u, 9u, 16u}) {
      const Composition comp = makeMesh(n);
      const Schedule sched = Scheduler(comp).schedule(ScheduleRequest(graph)).orThrow().schedule;
      row.push_back(std::to_string(analyzeSchedule(sched, comp).peakParallelism));
    }
    par.addRow(row);
  }
  par.print(std::cout);

  // Why the scaling saturates: the C-Box consumes ONE status bit per cycle
  // (§V-H), so branch-rich kernels are condition-bound no matter how many
  // PEs exist. Count comparisons per outer iteration.
  std::cout << "\ncondition pressure (comparisons per kernel, all feeding "
               "one C-Box status port):\n";
  for (Variant& v : variants) {
    const Cdfg graph = kir::lowerToCdfg(v.workload.fn).graph;
    unsigned comparisons = 0;
    for (NodeId id = 0; id < graph.numNodes(); ++id)
      if (graph.node(id).isStatusProducer()) ++comparisons;
    std::cout << "  " << v.name << ": " << comparisons << " comparisons\n";
  }
  std::cout << "\nfinding: peak parallelism rises with the array, but cycle "
               "counts saturate because the branch-rich decoders are bound "
               "by the C-Box's one-status-per-cycle port rather than by PE "
               "count — quantitative support for the paper's remark that "
               "execution time 'does not only depend on the number of PEs'; "
               "widening the status network would be the architectural fix "
               "(cf. the C-Box memory footnote in §IV-B)\n";
  report.write();
  return 0;
}
