// Extension bench (paper §VII outlook): automatic composition synthesis for
// an application domain. Profiles a set of kernels, ranks the generated
// candidates and compares the winner against the paper's hand-picked Fig. 13
// / Fig. 14 compositions on the same kernels — the paper's "iteratively
// improving compositions by experience" loop, automated.
#include "bench_common.hpp"
#include "synth/synthesis.hpp"

int main() {
  using namespace cgra;
  using namespace cgra::bench;

  std::cout << "== Extension: automatic composition synthesis (paper §VII "
               "future work) ==\n";

  std::vector<apps::Workload> workloads;
  workloads.push_back(apps::makeAdpcm(64, 1));
  workloads.push_back(apps::makeFir(10, 4, 2));
  workloads.push_back(apps::makeEwmaClip(12, 3));
  std::vector<Cdfg> graphs;
  for (const apps::Workload& w : workloads)
    graphs.push_back(kir::lowerToCdfg(w.fn).graph);
  std::vector<DomainKernel> kernels;
  for (std::size_t i = 0; i < graphs.size(); ++i)
    kernels.push_back(DomainKernel{&graphs[i], i == 0 ? 4.0 : 1.0,
                                   workloads[i].name});

  const SynthesisReport report = synthesizeComposition(kernels);
  std::cout << "domain profile: IMUL fraction "
            << fmt(report.profile.mulFraction * 100, 1) << "%, memory ops "
            << fmt(report.profile.memFraction * 100, 1)
            << "%, ILP estimate " << fmt(report.profile.avgIlp, 2)
            << " -> suggested " << report.profile.suggestedPEs << " PEs\n\n";

  TextTable table({"Candidate", "Feasible", "Weighted length", "LUTs", "Score"});
  for (const CandidateResult& c : report.candidates)
    table.addRow({c.name, c.feasible ? "yes" : "no",
                  c.feasible ? fmt(c.weightedLength, 0) : "-",
                  c.feasible ? fmt(c.lutArea, 0) : "-",
                  c.feasible ? fmt(c.score, 0) : c.failure.substr(0, 40)});
  table.print(std::cout);
  std::cout << "\nwinner: " << report.best.name() << "\n";

  // Compare the winner against the paper's fixed compositions on the
  // weighted domain objective.
  auto weightedLength = [&](const Composition& comp) -> double {
    const Scheduler scheduler(comp);
    double total = 0;
    for (std::size_t i = 0; i < graphs.size(); ++i)
      total += kernels[i].weight *
               scheduler.schedule(graphs[i]).schedule.length;
    return total;
  };
  std::cout << "\nweighted schedule length on fixed compositions:\n";
  TextTable cmp({"Composition", "Weighted length", "LUTs"});
  cmp.addRow({report.best.name(), fmt(weightedLength(report.best), 0),
              fmt(estimateResources(report.best).lutLogic, 0)});
  for (unsigned n : {8u, 9u, 16u}) {
    FactoryOptions fo;
    fo.contextMemoryLength = 1024;
    const Composition mesh = makeMesh(n, fo);
    cmp.addRow({mesh.name(), fmt(weightedLength(mesh), 0),
                fmt(estimateResources(mesh).lutLogic, 0)});
  }
  cmp.print(std::cout);
  std::cout << "\n(the synthesized composition should match or beat the "
               "hand-picked ones on the domain objective at comparable "
               "area)\n";
  return 0;
}
