// Extension bench (paper §VII outlook): automatic composition synthesis for
// an application domain. Profiles a set of kernels, ranks the generated
// candidates and compares the winner against the paper's hand-picked Fig. 13
// / Fig. 14 compositions on the same kernels — the paper's "iteratively
// improving compositions by experience" loop, automated.
//
// Candidate ranking and the fixed-composition comparison both run on the
// parallel sweep engine; the final section demonstrates that thread count
// changes wall time only, never the schedules (fingerprint equality).
#include <deque>

#include "bench_common.hpp"
#include "sched/sweep.hpp"
#include "synth/synthesis.hpp"

int main() {
  using namespace cgra;
  using namespace cgra::bench;

  std::cout << "== Extension: automatic composition synthesis (paper §VII "
               "future work) ==\n";
  BenchReport bench("synthesis_explore");

  std::vector<apps::Workload> workloads;
  workloads.push_back(apps::makeAdpcm(64, 1));
  workloads.push_back(apps::makeFir(10, 4, 2));
  workloads.push_back(apps::makeEwmaClip(12, 3));
  std::vector<Cdfg> graphs;
  for (const apps::Workload& w : workloads)
    graphs.push_back(kir::lowerToCdfg(w.fn).graph);
  std::vector<DomainKernel> kernels;
  for (std::size_t i = 0; i < graphs.size(); ++i)
    kernels.push_back(DomainKernel{&graphs[i], i == 0 ? 4.0 : 1.0,
                                   workloads[i].name});

  const SynthesisReport report = synthesizeComposition(kernels);
  std::cout << "domain profile: IMUL fraction "
            << fmt(report.profile.mulFraction * 100, 1) << "%, memory ops "
            << fmt(report.profile.memFraction * 100, 1)
            << "%, ILP estimate " << fmt(report.profile.avgIlp, 2)
            << " -> suggested " << report.profile.suggestedPEs << " PEs\n\n";

  TextTable table({"Candidate", "Feasible", "Weighted length", "LUTs", "Score"});
  for (const CandidateResult& c : report.candidates)
    table.addRow({c.name, c.feasible ? "yes" : "no",
                  c.feasible ? fmt(c.weightedLength, 0) : "-",
                  c.feasible ? fmt(c.lutArea, 0) : "-",
                  c.feasible ? fmt(c.score, 0) : c.failure.substr(0, 40)});
  table.print(std::cout);
  std::cout << "\nwinner: " << report.best.name() << "\n";

  // Compare the winner against the paper's fixed compositions on the
  // weighted domain objective: one sweep over (composition × kernel).
  std::deque<Composition> fixed;
  fixed.push_back(report.best);
  FactoryOptions fo;
  fo.contextMemoryLength = 1024;
  for (unsigned n : {8u, 9u, 16u}) fixed.push_back(makeMesh(n, fo));

  std::vector<SweepJob> jobs;
  for (const Composition& comp : fixed)
    for (std::size_t i = 0; i < graphs.size(); ++i)
      jobs.push_back(SweepJob{&comp, &graphs[i],
                              comp.name() + "@" + kernels[i].name,
                              SchedulerOptions{}});
  SweepOptions serialOpts;
  serialOpts.threads = 1;
  serialOpts.keepSchedules = false;
  const SweepReport serial = runSweep(jobs, serialOpts);

  std::cout << "\nweighted schedule length on fixed compositions:\n";
  TextTable cmp({"Composition", "Weighted length", "LUTs"});
  for (std::size_t c = 0; c < fixed.size(); ++c) {
    double total = 0;
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      const SweepJobResult& r = serial.results[c * graphs.size() + i];
      if (!r.ok) throw Error("explore: scheduling failed: " + r.error);
      total += kernels[i].weight * r.stats.contextsUsed;
    }
    cmp.addRow({fixed[c].name(), fmt(total, 0),
                fmt(estimateResources(fixed[c]).lutLogic, 0)});
    bench.metric("weightedLength_" + fixed[c].name(), total);
  }
  cmp.print(std::cout);
  std::cout << "\n(the synthesized composition should match or beat the "
               "hand-picked ones on the domain objective at comparable "
               "area)\n";

  // Determinism + scaling: rerun the identical job set on 4 threads and
  // check every schedule fingerprint against the serial baseline. On a
  // multi-core host the parallel run should also be ~min(4, cores)× faster.
  SweepOptions parOpts;
  parOpts.threads = 4;
  parOpts.keepSchedules = false;
  const SweepReport par = runSweep(jobs, parOpts);
  std::size_t identical = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i)
    if (serial.results[i].fingerprint == par.results[i].fingerprint)
      ++identical;
  std::cout << "\nsweep determinism: " << identical << "/" << jobs.size()
            << " schedule fingerprints identical across 1 vs 4 threads\n"
            << "sweep wall time: serial " << fmt(serial.wallTimeMs, 1)
            << " ms, 4 threads " << fmt(par.wallTimeMs, 1) << " ms (speedup "
            << fmt(serial.wallTimeMs / std::max(par.wallTimeMs, 1e-9), 2)
            << "x on this host)\n";
  if (identical != jobs.size()) {
    std::cerr << "ERROR: parallel sweep diverged from serial baseline\n";
    return 1;
  }
  bench.info("winner", report.best.name());
  bench.timing("serialSweepMs", serial.wallTimeMs);
  bench.timing("parallelSweepMs", par.wallTimeMs);
  bench.write();
  return 0;
}
