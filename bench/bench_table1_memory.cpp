// Reproduces Table I: "Memory utilization of the ADPCM decoder schedules for
// all CGRAs" — used contexts and maximum register-file entries for the
// homogeneous mesh compositions of Fig. 13.
//
// Paper values (for shape comparison; see EXPERIMENTS.md):
//   PEs            4    6    8    9    12   16
//   Used contexts  200  191  189  175  173  168
//   Max RF entries 66   69   62   51   44   49
#include "bench_common.hpp"

int main() {
  using namespace cgra;
  using namespace cgra::bench;

  std::cout << "== Table I: memory utilization of the ADPCM decoder "
               "schedules ==\n";
  const AdpcmSetup setup = AdpcmSetup::make();
  BenchReport report("table1_memory");

  TextTable table({"", "4 PEs", "6 PEs", "8 PEs", "9 PEs", "12 PEs", "16 PEs"});
  std::vector<std::string> contexts{"Used Contexts"};
  std::vector<std::string> rf{"Max. RF entries"};
  for (unsigned n : meshSizes()) {
    const AdpcmRun run = runAdpcmOn(setup, makeMesh(n));
    contexts.push_back(std::to_string(run.contexts));
    rf.push_back(std::to_string(run.maxRfEntries));
    report.metric("contexts_mesh" + std::to_string(n), run.contexts);
    report.metric("maxRf_mesh" + std::to_string(n), run.maxRfEntries);
    report.timing("schedulingMs_mesh" + std::to_string(n), run.schedulingMs);
  }
  table.addRow(contexts);
  table.addRow(rf);
  table.print(std::cout);

  std::cout << "\npaper shape check: contexts shrink as the array grows "
               "(more instruction-level parallelism per context)\n";
  report.write();
  return 0;
}
