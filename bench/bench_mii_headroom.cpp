// Extension bench (paper §VII): "In the future, we want to improve the
// scheduler to employ modulo scheduling." This harness quantifies what that
// would buy: for every loop of every bundled kernel it compares the list
// scheduler's achieved interval length (the loop's context count — its
// effective initiation interval, since iterations do not overlap) against
// the classic MII lower bounds (ResMII/RecMII). headroom = achieved / MII;
// a modulo scheduler could shrink the interval toward MII where headroom is
// large and recurrences are short.
#include "bench_common.hpp"
#include "sched/analysis.hpp"

int main() {
  using namespace cgra;
  using namespace cgra::bench;

  std::cout << "== Extension: modulo-scheduling headroom (paper §VII future "
               "work) ==\n";
  BenchReport report("mii_headroom");
  const Composition comp = makeMesh(8);
  TextTable table({"Kernel", "Loop", "Depth", "Achieved II", "ResMII",
                   "RecMII", "Headroom"});
  double worstHeadroom = 1.0;
  for (const apps::Workload& w : apps::allWorkloads()) {
    const kir::LoweringResult lowered = kir::lowerToCdfg(w.fn);
    const Scheduler scheduler(comp);
    const Schedule sched = scheduler.schedule(ScheduleRequest(lowered.graph)).orThrow().schedule;
    for (const LoopMii& m : computeMiiBounds(lowered.graph, sched, comp)) {
      table.addRow({w.name, std::to_string(m.loop),
                    std::to_string(lowered.graph.loopDepth(m.loop)),
                    std::to_string(m.achievedInterval), fmt(m.resMii, 1),
                    fmt(m.recMii, 1), fmt(m.headroom(), 2) + "x"});
      worstHeadroom = std::max(worstHeadroom, m.headroom());
      report.metric(
          "achievedII_" + w.name + "_loop" + std::to_string(m.loop),
          static_cast<std::uint64_t>(m.achievedInterval));
    }
  }
  table.print(std::cout);
  std::cout << "\nlargest headroom: " << fmt(worstHeadroom, 2)
            << "x — the gap a modulo scheduler (software pipelining of "
               "iterations) could close; loops whose RecMII is close to the "
               "achieved II are already recurrence-bound and would not "
               "benefit\n";

  // A per-composition view for the ADPCM inner loop.
  std::cout << "\nADPCM decoder loops across compositions:\n";
  const AdpcmSetup setup = AdpcmSetup::make();
  TextTable per({"Composition", "Outer II", "Inner II", "Inner MII"});
  for (unsigned n : meshSizes()) {
    const Composition mesh = makeMesh(n);
    const Schedule sched =
        Scheduler(mesh).schedule(ScheduleRequest(setup.graph)).orThrow().schedule;
    const auto bounds = computeMiiBounds(setup.graph, sched, mesh);
    std::string outerII = "-", innerII = "-", innerMii = "-";
    for (const LoopMii& m : bounds) {
      if (setup.graph.loopDepth(m.loop) == 1)
        outerII = std::to_string(m.achievedInterval);
      else if (innerII == "-") {
        innerII = std::to_string(m.achievedInterval);
        innerMii = fmt(m.mii(), 1);
      }
    }
    per.addRow({mesh.name(), outerII, innerII, innerMii});
  }
  per.print(std::cout);
  report.metric("largestHeadroom", worstHeadroom);
  report.write();
  return 0;
}
