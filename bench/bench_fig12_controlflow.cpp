// Reproduces Fig. 12 ("Control flow of the ADPCM decoder") and Fig. 11
// (an example CDFG with nested loops): emits GraphViz renderings of the
// decoder's CDFG and prints its control-flow statistics — the structure the
// paper demonstrates the scheduler on: an outer while loop containing
// conditionally executed nested loops with conditional loop bodies.
#include <fstream>

#include "bench_common.hpp"

int main() {
  using namespace cgra;
  using namespace cgra::bench;

  std::cout << "== Fig. 11/12: ADPCM decoder control flow ==\n";
  BenchReport report("fig12_controlflow");
  const apps::Workload w = apps::makeAdpcm(kAdpcmSamples, 1);
  std::cout << w.fn.toString() << "\n";

  const kir::LoweringResult lowered = kir::lowerToCdfg(w.fn);
  const Cdfg& g = lowered.graph;

  unsigned comparisons = 0, pwrites = 0, dmaOps = 0;
  for (NodeId id = 0; id < g.numNodes(); ++id) {
    const Node& n = g.node(id);
    if (n.isStatusProducer()) ++comparisons;
    if (n.isPWrite()) ++pwrites;
    if (n.isMemory()) ++dmaOps;
  }

  std::cout << "CDFG: " << g.numNodes() << " nodes, " << g.edges().size()
            << " dependency edges\n"
            << "loops: " << g.numLoops() - 1 << " (max nesting depth ";
  unsigned maxDepth = 0;
  for (LoopId l = 1; l < g.numLoops(); ++l)
    maxDepth = std::max(maxDepth, g.loopDepth(l));
  std::cout << maxDepth << ")\n"
            << "branch conditions: " << comparisons << " comparisons feeding "
            << g.numConditions() - 1 << " distinct path conditions\n"
            << "predicated writes: " << pwrites << ", DMA operations: "
            << dmaOps << "\n";

  for (LoopId l = 1; l < g.numLoops(); ++l) {
    const Loop& loop = g.loop(l);
    std::cout << "  loop " << l << " (depth " << g.loopDepth(l)
              << "): entry condition "
              << (loop.entryCond == kCondTrue ? "unconditional"
                                              : "data dependent")
              << "\n";
  }

  std::ofstream("adpcm_cdfg.dot") << g.toDot("adpcm_decoder");
  std::cout << "\nwrote adpcm_cdfg.dot (Fig. 11-style CDFG rendering)\n";

  std::ofstream("mesh9.dot") << makeMesh(9).toDot();
  std::ofstream("irregularD.dot") << makeIrregular('D').toDot();
  std::cout << "wrote mesh9.dot / irregularD.dot (Fig. 13/14-style "
               "composition renderings)\n";

  report.metric("cdfgNodes", static_cast<std::uint64_t>(g.numNodes()));
  report.metric("cdfgEdges", static_cast<std::uint64_t>(g.edges().size()));
  report.metric("loops", static_cast<std::uint64_t>(g.numLoops() - 1));
  report.metric("comparisons", comparisons);
  report.metric("predicatedWrites", pwrites);
  report.metric("dmaOps", dmaOps);
  report.write();
  return 0;
}
