// Load harness for the concurrent compile server (DESIGN.md §12): N
// closed-loop clients replay thousands of schedule requests over their own
// TCP connections against one in-process Service, with request keys drawn
// from a Zipf(1.1) distribution over a 16-job pool — the hot/cold mix a DSE
// explorer or CI farm produces (a few hot kernels dominate, a long tail of
// cold ones). Two passes run against one shared store: the cold pass starts
// empty (every distinct key schedules exactly once, everything else is a
// store hit or an in-flight dedup), the warm pass must answer every request
// from the store.
//
// Deterministic traffic counts (distinct keys scheduled, warm misses, shed
// and error responses) land in the gated metrics section; client-observed
// latency percentiles and throughput land in timings, where CI gates p99
// with a relaxed 3x threshold (machine speed varies, stalls do not).
#include <chrono>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "artifact/client.hpp"
#include "artifact/service.hpp"
#include "artifact/store.hpp"
#include "bench_common.hpp"
#include "support/metrics_registry.hpp"
#include "support/rng.hpp"

namespace {

using namespace cgra;
using Clock = std::chrono::steady_clock;

constexpr int kClients = 8;
constexpr int kRequestsPerClient = 250;  // 2000 requests per pass

/// The request pool: cheap kernels across two mesh sizes, 16 distinct cache
/// keys. Rank 0 is the hottest key.
struct JobPool {
  std::vector<std::string> lines;

  JobPool() {
    const char* kernels[] = {"gcd",  "ewma",    "dotprod", "cond_halving",
                             "bubble", "crc32", "histogram", "fir"};
    for (const char* comp : {"mesh4", "mesh9"})
      for (const char* kernel : kernels)
        lines.push_back(std::string("{\"comp\":\"") + comp +
                        "\",\"kernel\":\"" + kernel + "\"}");
  }
};

/// Zipf(s=1.1) sampler over ranks [0, n): precomputed CDF, inverted with
/// the repo's deterministic Rng so every machine replays the same traffic.
class ZipfSampler {
public:
  ZipfSampler(std::size_t n, std::uint64_t seed) : rng_(seed) {
    cdf_.reserve(n);
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), 1.1);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  std::size_t next() {
    const double u =
        static_cast<double>(rng_.next() >> 11) * 0x1.0p-53;  // [0, 1)
    for (std::size_t r = 0; r < cdf_.size(); ++r)
      if (u < cdf_[r]) return r;
    return cdf_.size() - 1;
  }

private:
  Rng rng_;
  std::vector<double> cdf_;
};

struct PassResult {
  LatencyHistogram latency;  ///< client-observed round-trip latency
  double wallMs = 0.0;
  std::uint64_t errors = 0;
};

/// One closed-loop pass: kClients threads, each its own connection, each
/// request waiting for its response (round-trip latency is the measured
/// quantity; the per-connection in-flight window stays at one).
PassResult runPass(std::uint16_t port, const JobPool& pool,
                   std::uint64_t seedBase) {
  PassResult result;
  std::mutex mu;
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      artifact::JsonlClient client = artifact::JsonlClient::connectTcp(port);
      ZipfSampler zipf(pool.lines.size(), seedBase + static_cast<unsigned>(c));
      LatencyHistogram local;
      std::uint64_t localErrors = 0;
      std::string line;
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const Clock::time_point t0 = Clock::now();
        client.sendLine(pool.lines[zipf.next()]);
        if (!client.recvLine(line)) {
          ++localErrors;
          break;
        }
        local.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - t0)
                .count()));
        if (line.find("\"ok\":true") == std::string::npos) ++localErrors;
      }
      std::lock_guard<std::mutex> lock(mu);
      result.latency.merge(local);
      result.errors += localErrors;
    });
  }
  for (std::thread& t : clients) t.join();
  result.wallMs = std::chrono::duration<double, std::milli>(Clock::now() -
                                                            start)
                      .count();
  return result;
}

}  // namespace

int main() {
  bench::BenchReport report("serve");
  const JobPool pool;

  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 4;
  artifact::Service service(store, options);
  const std::uint16_t port = service.addTcpListener(0);
  service.start();

  const PassResult cold = runPass(port, pool, /*seedBase=*/1000);
  const artifact::ServiceStats coldStats = service.stats();

  const PassResult warm = runPass(port, pool, /*seedBase=*/5000);
  const artifact::ServiceStats warmStats = service.stats();

  // Final Prometheus scrape: the same text a monitoring agent would pull
  // via {"metrics": true}. Cross-checked below against the client tally.
  const std::string exposition = service.metricsText();

  service.drain();
  service.stop();
  const std::uint64_t warmScheduled = warmStats.scheduled - coldStats.scheduled;
  const std::uint64_t total = static_cast<std::uint64_t>(kClients) *
                              static_cast<std::uint64_t>(kRequestsPerClient);

  std::cout << "serve load: " << 2 * total << " requests over " << kClients
            << " connections, " << pool.lines.size() << " distinct keys\n"
            << "cold pass: " << coldStats.scheduled << " scheduled, "
            << coldStats.cacheHits << " hits, " << coldStats.deduped
            << " deduped, p99 "
            << static_cast<std::uint64_t>(cold.latency.quantileUs(0.99))
            << " us\n"
            << "warm pass: " << warmScheduled << " scheduled, p99 "
            << static_cast<std::uint64_t>(warm.latency.quantileUs(0.99))
            << " us\n";

  // Deterministic traffic counters: gated at 10% by bench_compare.py. The
  // Zipf streams are seeded, so the sampled key set — and with it the
  // cold-pass schedule count and warm-pass miss count — is reproducible.
  report.metric("coldScheduled", coldStats.scheduled);
  report.metric("warmMisses", warmScheduled);
  report.metric("warmMissPct",
                100.0 * static_cast<double>(warmScheduled) /
                    static_cast<double>(total));
  report.metric("clientErrors", cold.errors + warm.errors);
  report.metric("shedResponses",
                warmStats.shedOverload + warmStats.shedShutdown);
  report.metric("parseErrors", warmStats.parseErrors);

  // Latency/throughput: machine-dependent, warn-only — except p99Us, which
  // CI gates with a relaxed 3x threshold to catch serialization stalls.
  report.timing("p50Us", warm.latency.quantileUs(0.50));
  report.timing("p99Us", warm.latency.quantileUs(0.99));
  report.timing("coldP99Us", cold.latency.quantileUs(0.99));
  report.timing("coldWallMs", cold.wallMs);
  report.timing("warmWallMs", warm.wallMs);
  report.timing("warmUsPerRequest", 1000.0 * warm.wallMs /
                                        static_cast<double>(total));
  report.info("throughputWarmReqPerSec",
              std::to_string(static_cast<std::uint64_t>(
                  1000.0 * static_cast<double>(total) / warm.wallMs)));
  report.info("connections", std::to_string(kClients));
  report.info("distinctKeys", std::to_string(pool.lines.size()));
  report.info("serverP99Us", std::to_string(static_cast<std::uint64_t>(
                                 warmStats.latencyP99Us)));

  // The scraped cgra_requests_total must equal the requests both passes
  // actually sent — a monitoring agent sees the same truth the clients do.
  std::uint64_t scrapedRequests = 0;
  std::istringstream lines(exposition);
  for (std::string l; std::getline(lines, l);)
    if (l.rfind("cgra_requests_total ", 0) == 0)
      scrapedRequests = std::stoull(l.substr(l.find(' ') + 1));
  report.metric("scrapedRequests", scrapedRequests);
  if (scrapedRequests != 2 * total) {
    std::cerr << "serve: scraped cgra_requests_total " << scrapedRequests
              << " != sent " << 2 * total << "\n";
    return 1;
  }
  report.write();
  return cold.errors + warm.errors == 0 ? 0 : 1;
}
