// Reproduces Table II: "Execution times for different CGRAs in clock cycles"
// plus the synthesis-result rows (frequency, LUT logic/memory, DSP, BRAM
// utilization) for the Fig. 13 meshes AND the Fig. 14 irregular compositions
// A–F, the AMIDAR-baseline speedup statement (§VI-B: "the CGRA with 9 PEs
// ... is 7.3 times faster than the AMIDAR processor"; AMIDAR alone takes
// 926 k cycles) and the RF-width experiment ("an alternative composition of
// 4PE using 32 entries shows an increase of 7.2 % in clock frequency").
#include "bench_common.hpp"

int main() {
  using namespace cgra;
  using namespace cgra::bench;

  std::cout << "== Table II: execution times and synthesis results ==\n";
  const AdpcmSetup setup = AdpcmSetup::make();
  BenchReport report("table2_execution");
  const std::uint64_t amidar = baselineCycles(setup);
  report.metric("amidarCycles", amidar);
  std::cout << "AMIDAR baseline: " << fmtKilo(amidar)
            << " cycles (paper: 926k on real AMIDAR)\n\n";

  std::vector<std::pair<std::string, Composition>> comps;
  for (unsigned n : meshSizes())
    comps.emplace_back(std::to_string(n) + " PEs", makeMesh(n));
  for (char c : irregularLabels())
    comps.emplace_back(std::string("8 PEs ") + c, makeIrregular(c));

  TextTable table({"Composition", "Cycles", "Speedup", "Freq (MHz)",
                   "LUT-logic (%)", "LUT-mem (%)", "DSP (%)", "BRAM (%)"});
  std::uint64_t best = ~0ull;
  std::string bestName;
  for (const auto& [name, comp] : comps) {
    const AdpcmRun run = runAdpcmOn(setup, comp);
    report.metric("cycles_" + comp.name(), run.cycles);
    if (run.report.counters) {
      // Achieved utilization is a higher-is-better quantity; export its
      // complement so every gated metric stays lower-is-better.
      report.metric("idleFraction_" + comp.name(),
                    1.0 - run.report.achievedUtilization());
      report.counters(comp.name(), run.report.counters->toJson());
    }
    table.addRow({name, fmtKilo(run.cycles),
                  fmt(static_cast<double>(amidar) /
                          static_cast<double>(run.cycles),
                      1) + "x",
                  fmt(run.resources.frequencyMHz, 1),
                  fmt(run.resources.lutLogicPct(), 2),
                  fmt(run.resources.lutMemoryPct(), 2),
                  fmt(run.resources.dspPct(), 2),
                  fmt(run.resources.bramPct(), 2)});
    if (run.cycles < best) {
      best = run.cycles;
      bestName = name;
    }
  }
  table.print(std::cout);
  std::cout << "\nfastest composition: " << bestName << " ("
            << fmtKilo(best) << " cycles, speedup "
            << fmt(static_cast<double>(amidar) / static_cast<double>(best), 1)
            << "x vs AMIDAR; paper: 9-PE mesh best among meshes at 7.3x, "
               "D best / B worst among irregulars)\n";

  // RF width experiment (§VI-B).
  FactoryOptions rf128;
  FactoryOptions rf32;
  rf32.regfileSize = 32;
  const double f128 = estimateResources(makeMesh(4, rf128)).frequencyMHz;
  const double f32 = estimateResources(makeMesh(4, rf32)).frequencyMHz;
  std::cout << "\nRF width experiment (4 PEs): 128 entries -> "
            << fmt(f128, 1) << " MHz, 32 entries -> " << fmt(f32, 1)
            << " MHz (+" << fmt(100.0 * (f32 - f128) / f128, 1)
            << "%; paper: +7.2% -> 111.1 MHz)\n";
  report.metric("bestCycles", best);
  report.info("bestComposition", bestName);
  report.write();
  return 0;
}
