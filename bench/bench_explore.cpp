// Cold-vs-warm design-space exploration through the artifact store
// (DESIGN.md §14): one fixed-seed genetic search is run against an empty
// cache directory, then repeated with a fresh Explorer over the now-
// populated store. The warm run must answer every candidate×kernel job
// from the store (misses gated at 0, hits > 0) and reproduce the cold
// run's stable report byte-for-byte — the determinism bar the subsystem
// promises. Search-shape metrics (evaluations, front size, dominated /
// infeasible tallies) are deterministic for the fixed seed and gated by
// tools/bench_compare.py; wall clock lands in the warn-only timings.
#include <chrono>
#include <deque>
#include <filesystem>
#include <iostream>

#include "artifact/store.hpp"
#include "bench_common.hpp"
#include "explore/explorer.hpp"

namespace {

using namespace cgra;
using namespace cgra::bench;

double msSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  // Three cheap kernels with mixed control flow keep the cold search fast
  // while exercising predication and loops on every candidate.
  std::deque<Cdfg> graphs;
  graphs.push_back(kir::lowerToCdfg(apps::makeDotProduct(8).fn).graph);
  graphs.push_back(kir::lowerToCdfg(apps::makeGcd(546, 2394).fn).graph);
  graphs.push_back(kir::lowerToCdfg(apps::makeSobel().fn).graph);
  const std::vector<explore::ExploreKernel> kernels{
      {"dotprod", &graphs[0], 1.0},
      {"gcd", &graphs[1], 1.0},
      {"sobel", &graphs[2], 2.0},
  };

  explore::CompositionSpace space;  // the default paper-range space
  explore::ExploreOptions opts;
  opts.strategy = "genetic";
  opts.seed = 42;
  opts.budget = 12;
  opts.population = 4;
  opts.sweep.threads = 2;

  namespace sfs = std::filesystem;
  const sfs::path cacheDir = sfs::temp_directory_path() / "cgra_bench_explore";
  sfs::remove_all(cacheDir);
  artifact::StoreOptions storeOpts;
  storeOpts.directory = cacheDir.string();
  artifact::ArtifactStore store(storeOpts);

  const auto coldStart = std::chrono::steady_clock::now();
  explore::Explorer coldExplorer(space, kernels, opts, &store);
  const explore::ExploreReport cold = coldExplorer.run();
  const double coldMs = msSince(coldStart);

  // A fresh Explorer over the same store: the in-process memo is empty, so
  // every candidate is re-summarized, but every schedule comes back from
  // the artifact store.
  const auto warmStart = std::chrono::steady_clock::now();
  explore::Explorer warmExplorer(space, kernels, opts, &store);
  const explore::ExploreReport warm = warmExplorer.run();
  const double warmMs = msSince(warmStart);
  sfs::remove_all(cacheDir);

  const std::string coldStable = cold.toJson(false).dump();
  const bool stableIdentical = coldStable == warm.toJson(false).dump();
  const double speedup = warmMs > 0.0 ? coldMs / warmMs : 0.0;

  std::cout << "evaluations: " << cold.evaluations << " ("
            << cold.front.size() << " on front, " << cold.dominatedCount
            << " dominated, " << cold.infeasibleCount << " infeasible) over "
            << cold.generations.size() << " generation(s)\n"
            << "cold: " << coldMs << " ms (" << cold.counters.storeMisses
            << " store misses)\n"
            << "warm: " << warmMs << " ms (" << warm.counters.storeHits
            << " store hits, " << warm.counters.storeMisses << " misses, "
            << speedup << "x)\n"
            << "stable JSON " << (stableIdentical ? "identical" : "DIVERGED")
            << "\n";

  BenchReport report("explore");
  // Deterministic for the fixed seed, gated: the shape of the search and
  // the cache behaviour of the warm rerun.
  report.metric("evaluations", static_cast<std::uint64_t>(cold.evaluations));
  report.metric("frontSize", static_cast<std::uint64_t>(cold.front.size()));
  report.metric("dominated", static_cast<std::uint64_t>(cold.dominatedCount));
  report.metric("infeasible",
                static_cast<std::uint64_t>(cold.infeasibleCount));
  report.metric("warmStoreMisses", warm.counters.storeMisses);
  report.metric("stableJsonDiverged",
                static_cast<std::uint64_t>(stableIdentical ? 0 : 1));
  // Wall clock: warn-only (and gated loosely via --gate-timing in CI).
  report.timing("exploreColdMs", coldMs);
  report.timing("exploreWarmMs", warmMs);
  report.info("strategy", opts.strategy);
  report.info("budget", std::to_string(opts.budget));
  report.info("generations", std::to_string(cold.generations.size()));
  report.info("speedup", std::to_string(speedup) + "x");
  report.write();

  // Acceptance: warm rerun fully cache-served, identical stable bytes,
  // and a usable (non-empty, all-feasible) front.
  if (!stableIdentical) {
    std::cerr << "FAIL: stable report diverged between cold and warm runs\n";
    return 1;
  }
  if (warm.counters.storeMisses != 0 || warm.counters.storeHits == 0) {
    std::cerr << "FAIL: warm rerun missed the store ("
              << warm.counters.storeMisses << " misses, "
              << warm.counters.storeHits << " hits)\n";
    return 1;
  }
  if (cold.front.empty()) {
    std::cerr << "FAIL: empty Pareto front\n";
    return 1;
  }
  for (const explore::CandidateEval& e : cold.front)
    if (!e.feasible) {
      std::cerr << "FAIL: infeasible candidate " << e.key << " on the front\n";
      return 1;
    }
  return 0;
}
