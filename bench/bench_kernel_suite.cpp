// The examples/kernels/ suite on the CGRA: every .kir kernel is parsed, run
// through the frontend normalization pipeline (break/continue/return,
// short-circuit booleans and switch demoted to structured if/while),
// scheduled onto the 9-PE mesh and simulated, with the sequential token
// machine on the UNnormalized kernel as the baseline. Every simulation is
// differentially checked against the reference interpreter; any mismatch
// makes the bench exit nonzero. Cycle counts and context counts are
// deterministic and gated by tools/bench_compare.py against
// bench/baselines/BENCH_kernel_suite.json.
#include <algorithm>
#include <filesystem>
#include <vector>

#include "bench_common.hpp"
#include "kir/interp.hpp"
#include "kir/parser.hpp"

#ifndef CGRA_KERNEL_DIR
#error "CGRA_KERNEL_DIR must point at examples/kernels"
#endif

namespace {

using namespace cgra;

/// Reference inputs per kernel, mirroring the doc-comment example commands
/// in the .kir files (larger where the examples would underfill a mesh).
struct SuiteInputs {
  std::map<std::string, std::vector<std::int32_t>> arrays;
  std::map<std::string, std::int32_t> scalars;
};

std::map<std::string, SuiteInputs> suiteInputs() {
  return {
      {"popcount_sum",
       {{{"data", {7, 255, 1, 0, 1023, -1, 4096, 77}}}, {{"n", 8}}}},
      {"saturating_diff",
       {{{"a", {10, 20, 30, -40, 90, 3}},
         {"b", {5, 50, 0, 40, -90, 3}},
         {"out", {0, 0, 0, 0, 0, 0}}},
        {{"n", 6}, {"limit", 15}}}},
      {"fir",
       {{{"x", {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}},
         {"coeff", {1, -2, 1}},
         {"out", {0, 0, 0, 0, 0, 0, 0, 0, 0, 0}}},
        {{"n", 10}, {"taps", 3}}}},
      {"iir",
       {{{"x", {100, 200, -300, 50, 400, -100, 250, -250}},
         {"y", {0, 0, 0, 0, 0, 0, 0, 0}}},
        {{"n", 8}, {"a", 200}, {"b", 120}, {"limit", 180}}}},
      {"crc32",
       {{{"data", {49, 50, 51, 52, 53, 54, 55, 56}}, {"out", {0}}},
        {{"n", 8}}}},
      {"insertion_sort",
       {{{"a", {5, 2, 9, 1, 7, 3, 3, -8, 40, 0}}}, {{"n", 10}}}},
      {"matmul",
       {{{"a", {1, 2, 3, 4, 5, 6, 7, 8, 9}},
         {"b", {9, 8, 7, 6, 5, 4, 3, 2, 1}},
         {"c", {0, 0, 0, 0, 0, 0, 0, 0, 0}}},
        {{"n", 3}, {"m", 3}, {"p", 3}}}},
      {"string_search",
       {{{"haystack", {104, 101, 108, 108, 111, 32, 119, 111, 114, 108, 100}},
         {"needle", {111, 114}}},
        {{"n", 11}, {"m", 2}}}},
      {"vm_accumulate",
       {{{"ops", {0, 5, 2, 3, 4, 0, 1, 7, 0, 2, 3, 1, 5, 0, 0, 9}},
         {"out", {0, 0, 0, 0, 0, 0, 0, 0, 0}}},
        {{"n", 8}}}},
  };
}

std::vector<std::int32_t> bindInputs(const kir::Function& fn,
                                     const SuiteInputs& in,
                                     HostMemory& heap) {
  std::vector<std::int32_t> locals(fn.numLocals(), 0);
  for (kir::LocalId l = 0; l < fn.numLocals(); ++l) {
    if (!fn.local(l).isParameter) continue;
    const std::string& name = fn.local(l).name;
    if (auto it = in.arrays.find(name); it != in.arrays.end())
      locals[l] = heap.alloc(it->second);
    else
      locals[l] = in.scalars.at(name);
  }
  return locals;
}

}  // namespace

int main() {
  using namespace cgra;
  using namespace cgra::bench;

  std::cout << "== Kernel suite: normalization pipeline + CGRA vs. "
               "sequential baseline ==\n";
  BenchReport report("kernel_suite");
  FactoryOptions fo;
  fo.contextMemoryLength = 2048;
  fo.cboxSlots = 64;
  const Composition comp = makeMesh(9, fo);
  report.info("composition", comp.name());

  const auto inputs = suiteInputs();
  std::vector<std::string> names;
  for (const auto& entry :
       std::filesystem::directory_iterator(CGRA_KERNEL_DIR))
    if (entry.path().extension() == ".kir")
      names.push_back(entry.path().stem().string());
  std::sort(names.begin(), names.end());

  TextTable table({"Kernel", "CGRA cycles", "Baseline cycles", "Speedup",
                   "Contexts", "CDFG nodes"});
  unsigned mismatches = 0;
  double schedulingMs = 0.0;
  for (const std::string& name : names) {
    const kir::Function fn = kir::parseKernelFile(
        std::string(CGRA_KERNEL_DIR) + "/" + name + ".kir");
    const SuiteInputs& in = inputs.at(name);

    HostMemory refHeap;
    const std::vector<std::int32_t> initial = bindInputs(fn, in, refHeap);
    HostMemory goldenHeap = refHeap;
    kir::Interpreter interp;
    const auto golden = interp.run(fn, initial, goldenHeap);

    // Baseline: token machine on the unnormalized kernel (jump lowering).
    HostMemory baseHeap = refHeap;
    const TokenMachine tm;
    const TokenRunResult base =
        tm.run(kir::lowerToBytecode(fn), initial, baseHeap);
    if (!(baseHeap == goldenHeap)) ++mismatches;

    // CGRA: frontend pipeline, then schedule + simulate.
    const kir::Function norm = kir::runFrontendPipeline(fn).fn;
    const kir::LoweringResult lowered = kir::lowerToCdfg(norm);
    const ScheduleReport sched =
        Scheduler(comp).schedule(ScheduleRequest(lowered.graph)).orThrow();
    schedulingMs += sched.stats.wallTimeMs;

    std::map<VarId, std::int32_t> liveIns;
    for (const LiveBinding& lb : sched.schedule.liveIns)
      liveIns[lb.var] = initial[lb.var];
    HostMemory simHeap = refHeap;
    SimOptions simOpts;
    simOpts.collectCounters = countersEnabled();
    const SimResult sim =
        Simulator(comp, sched.schedule).run(liveIns, simHeap, simOpts);
    if (!(simHeap == goldenHeap)) ++mismatches;
    for (const auto& [var, value] : sim.liveOuts)
      if (var < fn.numLocals() && value != golden.locals[var]) ++mismatches;

    report.metric("cycles_" + name, sim.runCycles);
    report.metric("baselineCycles_" + name, base.cycles);
    report.metric("contexts_" + name,
                  static_cast<std::uint64_t>(sched.schedule.length));
    table.addRow({name, std::to_string(sim.runCycles),
                  std::to_string(base.cycles),
                  fmt(static_cast<double>(base.cycles) /
                          static_cast<double>(sim.runCycles),
                      2) + "x",
                  std::to_string(sched.schedule.length),
                  std::to_string(lowered.graph.numNodes())});
  }
  table.print(std::cout);

  report.metric("kernels", static_cast<std::uint64_t>(names.size()));
  report.metric("mismatches", mismatches);
  report.timing("schedulingMs", schedulingMs);
  report.write();
  if (mismatches != 0) {
    std::cout << "ERROR: " << mismatches
              << " differential mismatch(es) against the interpreter\n";
    return 1;
  }
  std::cout << "\nall " << names.size()
            << " kernels match the reference interpreter (CGRA and "
               "baseline)\n";
  return 0;
}
