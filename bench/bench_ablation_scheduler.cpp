// Ablation bench for the scheduler's design choices called out in §V (and
// DESIGN.md): attraction-based PE ordering (§V-G), pWRITE fusing (§V-E),
// longest-path candidate priority (§V-F), and the partial-unroll frontend
// option (Fig. 1, used at factor 2 in the evaluation). Each knob is toggled
// independently on the 8-PE mesh and composition D; the table reports
// executed cycles and schedule length.
#include "bench_common.hpp"

int main() {
  using namespace cgra;
  using namespace cgra::bench;

  std::cout << "== Ablation: scheduler design choices (ADPCM, 416 samples) "
               "==\n";
  BenchReport report("ablation_scheduler");
  const apps::Workload base = apps::makeAdpcm(kAdpcmSamples, 1);

  struct Variant {
    std::string name;
    SchedulerOptions opts;
    unsigned unroll;
  };
  SchedulerOptions noAttraction;
  noAttraction.useAttraction = false;
  SchedulerOptions noFusing;
  noFusing.fuseWrites = false;
  SchedulerOptions noPriority;
  noPriority.longestPathPriority = false;
  const std::vector<Variant> variants = {
      {"full (paper configuration)", SchedulerOptions{}, 2},
      {"no attraction criterion", noAttraction, 2},
      {"no pWRITE fusing", noFusing, 2},
      {"no longest-path priority", noPriority, 2},
      {"no loop unrolling", SchedulerOptions{}, 1},
      {"unroll factor 3", SchedulerOptions{}, 3},
  };

  for (const std::string compName : {std::string("mesh8"), std::string("D")}) {
    const Composition comp =
        compName == "mesh8" ? makeMesh(8) : makeIrregular('D');
    std::cout << "\n-- composition " << comp.name() << " --\n";
    TextTable table({"Variant", "Cycles", "Contexts", "Max RF", "Copies",
                     "Fused", "Sched ms"});
    for (const Variant& v : variants) {
      AdpcmSetup setup;
      setup.workload = apps::makeAdpcm(kAdpcmSamples, 1);
      setup.unrolled =
          kir::unrollLoops(setup.workload.fn, v.unroll, true);
      setup.graph = kir::lowerToCdfg(setup.unrolled).graph;

      const Scheduler scheduler(comp, v.opts);
      const ScheduleReport result = scheduler.schedule(ScheduleRequest(setup.graph)).orThrow();
      const RegAllocation alloc = allocateRegisters(result.schedule, comp);
      std::map<VarId, std::int32_t> liveIns;
      for (const LiveBinding& lb : result.schedule.liveIns)
        liveIns[lb.var] = setup.workload.initialLocals[lb.var];
      HostMemory heap = setup.workload.heap;
      const Simulator sim(comp, result.schedule);
      const SimResult r = sim.run(liveIns, heap);

      table.addRow({v.name, fmtKilo(r.runCycles),
                    std::to_string(result.schedule.length),
                    std::to_string(alloc.maxRfEntries()),
                    std::to_string(result.stats.copiesInserted),
                    std::to_string(result.stats.fusedWrites),
                    fmt(result.stats.wallTimeMs, 2)});

      // One gated series per (composition, variant); variant index keeps the
      // metric keys short and stable.
      const std::string key =
          comp.name() + "_v" + std::to_string(&v - variants.data());
      report.metric("cycles_" + key, r.runCycles);
      report.metric("contexts_" + key,
                    static_cast<std::uint64_t>(result.schedule.length));
      report.timing("schedulingMs_" + key, result.stats.wallTimeMs);
    }
    table.print(std::cout);
  }
  report.write();
  return 0;
}
