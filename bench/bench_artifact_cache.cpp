// Cold-vs-warm compile through the persistent artifact store (DESIGN.md
// §10): a sweep matrix is scheduled against an empty cache directory,
// then repeated against the now-populated store — the service scenario the
// subsystem exists for (repeated sweep matrices inside one long-lived
// process). A third run re-opens the directory with a fresh store to prove
// the artifacts also survive on disk across processes. The warm runs must
// answer every job from the store; wall-clock lands in the warn-only
// timings section, while the deterministic cache traffic (misses, hits,
// failures, stable-JSON divergence) is gated by tools/bench_compare.py.
//
// Each phase is timed as the best of kRounds full repetitions (fresh cache
// directory per round): the speedup bar compares the phases' costs, not
// one round's scheduling jitter against another's.
#include <algorithm>
#include <chrono>
#include <deque>
#include <filesystem>
#include <iostream>
#include <limits>
#include <vector>

#include "artifact/store.hpp"
#include "artifact/sweep_cache.hpp"
#include "bench_common.hpp"
#include "sched/sweep.hpp"

namespace {

using namespace cgra;
using namespace cgra::bench;

constexpr int kRounds = 3;

double msSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  // The evaluation kernel (ADPCM, 416 samples, unroll 2) across the mesh
  // sizes plus two cheap kernels: enough scheduling work that the cold run
  // dominates, with a few duplicate jobs so in-sweep dedup shows up too.
  const AdpcmSetup adpcm = AdpcmSetup::make();
  const Cdfg stereo = kir::lowerToCdfg(
      kir::unrollLoops(apps::makeAdpcmStereo().fn, kUnrollFactor,
                       /*innermostOnly=*/true)).graph;
  const Cdfg sobel = kir::lowerToCdfg(apps::makeSobel().fn).graph;

  std::deque<Composition> comps;
  for (unsigned n : {9u, 12u, 16u}) comps.push_back(makeMesh(n));

  std::vector<SweepJob> jobs;
  for (const Composition& comp : comps) {
    jobs.push_back(SweepJob{&comp, &adpcm.graph, "adpcm@" + comp.name(),
                            SchedulerOptions{}});
    jobs.push_back(SweepJob{&comp, &stereo, "stereo@" + comp.name(),
                            SchedulerOptions{}});
    jobs.push_back(SweepJob{&comp, &sobel, "sobel@" + comp.name(),
                            SchedulerOptions{}});
  }
  // Duplicates: scheduled once, copied to the repeats.
  jobs.push_back(
      SweepJob{&comps[0], &adpcm.graph, "adpcm-dup", SchedulerOptions{}});
  jobs.push_back(SweepJob{&comps[0], &stereo, "stereo-dup", SchedulerOptions{}});

  namespace sfs = std::filesystem;
  const sfs::path cacheDir =
      sfs::temp_directory_path() / "cgra_bench_artifact_cache";

  SweepOptions opts;
  opts.threads = 2;
  artifact::StoreOptions storeOpts;
  storeOpts.directory = cacheDir.string();

  double coldMs = std::numeric_limits<double>::infinity();
  double warmMs = std::numeric_limits<double>::infinity();
  double diskWarmMs = std::numeric_limits<double>::infinity();
  std::uint64_t failures = 0, coldHits = 0, warmMisses = 0, uncachedJobs = 0;
  std::size_t dedupedJobs = 0;
  bool stableIdentical = true;

  for (int round = 0; round < kRounds; ++round) {
    sfs::remove_all(cacheDir);
    artifact::ArtifactStore store(storeOpts);

    const auto coldStart = std::chrono::steady_clock::now();
    const SweepReport cold = artifact::runCachedSweep(jobs, opts, store);
    coldMs = std::min(coldMs, msSince(coldStart));

    // The repeated matrix against the same store: every job answers from
    // the in-memory hot layer without touching the scheduler.
    const auto warmStart = std::chrono::steady_clock::now();
    const SweepReport warm = artifact::runCachedSweep(jobs, opts, store);
    warmMs = std::min(warmMs, msSince(warmStart));

    // A fresh store on the same directory: the hot layer is empty, every
    // hit comes off disk — the cross-process warm start. Asserted for hit
    // count and byte-identical stable JSON; its wall clock is reported but
    // does not gate the speedup bar (parsing artifacts off disk is slower
    // than the hot layer yet still far cheaper than scheduling).
    const auto diskStart = std::chrono::steady_clock::now();
    artifact::ArtifactStore reopened(storeOpts);
    const SweepReport diskWarm =
        artifact::runCachedSweep(jobs, opts, reopened);
    diskWarmMs = std::min(diskWarmMs, msSince(diskStart));

    const std::string coldStable = cold.toJson(false).dump();
    stableIdentical = stableIdentical &&
                      coldStable == warm.toJson(false).dump() &&
                      coldStable == diskWarm.toJson(false).dump();
    failures += cold.failures + warm.failures + diskWarm.failures;
    coldHits += cold.cacheHits;
    warmMisses += warm.cacheMisses + diskWarm.cacheMisses;
    uncachedJobs += 2 * jobs.size() - warm.cacheHits - diskWarm.cacheHits;
    dedupedJobs = cold.dedupedJobs;
  }
  sfs::remove_all(cacheDir);

  const double speedup = warmMs > 0.0 ? coldMs / warmMs : 0.0;

  std::cout << "jobs: " << jobs.size() << " (deduped " << dedupedJobs
            << "), best of " << kRounds << " rounds\n"
            << "cold:      " << coldMs << " ms\n"
            << "warm:      " << warmMs << " ms  (" << speedup << "x)\n"
            << "disk-warm: " << diskWarmMs << " ms\n"
            << "stable JSON " << (stableIdentical ? "identical" : "DIVERGED")
            << "\n";

  BenchReport report("artifact_cache");
  // Deterministic, gated: cache traffic and correctness indicators. Any
  // growth in misses-on-warm, failures or stable-JSON divergence is a
  // regression of the caching layer itself.
  report.metric("failures", failures);
  report.metric("coldCacheHits", coldHits);
  report.metric("warmCacheMisses", warmMisses);
  report.metric("stableJsonDiverged",
                static_cast<std::uint64_t>(stableIdentical ? 0 : 1));
  report.metric("uncachedJobs", uncachedJobs);
  // Wall clock: warn-only.
  report.timing("coldMs", coldMs);
  report.timing("warmMs", warmMs);
  report.timing("diskWarmMs", diskWarmMs);
  report.info("jobs", std::to_string(jobs.size()));
  report.info("dedupedJobs", std::to_string(dedupedJobs));
  report.info("speedup", std::to_string(speedup) + "x");
  report.write();

  // The acceptance bar: a warm repeat of the matrix must be at least 5x
  // faster than the cold compile and byte-identical in its stable metrics
  // JSON, and a re-opened store must answer everything from disk.
  if (!stableIdentical) {
    std::cerr << "FAIL: stable JSON diverged between cold and warm runs\n";
    return 1;
  }
  if (uncachedJobs != 0) {
    std::cerr << "FAIL: warm runs missed the cache (" << uncachedJobs
              << " uncached jobs)\n";
    return 1;
  }
  if (speedup < 5.0) {
    std::cerr << "FAIL: warm run only " << speedup
              << "x faster than cold (need >= 5x)\n";
    return 1;
  }
  return 0;
}
