// Reproduces Table III: "Execution times for different CGRAs with single
// cycle multipliers in clock cycles" (plus their maximum frequencies). The
// Table II CGRAs use a 2-cycle block multiplier; replacing it with a
// combinational single-cycle multiplier reduces cycle counts but lengthens
// the critical path (paper: 86.9 MHz at 4 PEs vs 103.6 MHz with the block
// multiplier).
#include "bench_common.hpp"

int main() {
  using namespace cgra;
  using namespace cgra::bench;

  std::cout << "== Table III: single-cycle multiplier variants ==\n";
  const AdpcmSetup setup = AdpcmSetup::make();
  BenchReport report("table3_multiplier");

  FactoryOptions single;
  single.blockMultiplier = false;

  TextTable table({"", "4 PEs", "6 PEs", "8 PEs", "9 PEs", "12 PEs", "16 PEs"});
  std::vector<std::string> cyc{"Cycles"};
  std::vector<std::string> cycBlock{"Cycles (2-cycle mult, Table II)"};
  std::vector<std::string> freq{"Frequency in MHz"};
  for (unsigned n : meshSizes()) {
    const AdpcmRun runSingle = runAdpcmOn(setup, makeMesh(n, single));
    const AdpcmRun runBlock = runAdpcmOn(setup, makeMesh(n));
    cyc.push_back(fmtKilo(runSingle.cycles));
    cycBlock.push_back(fmtKilo(runBlock.cycles));
    freq.push_back(fmt(runSingle.resources.frequencyMHz, 1));
    report.metric("cyclesSingle_mesh" + std::to_string(n), runSingle.cycles);
    report.metric("cyclesBlock_mesh" + std::to_string(n), runBlock.cycles);
  }
  table.addRow(cyc);
  table.addRow(cycBlock);
  table.addRow(freq);
  table.print(std::cout);

  std::cout << "\npaper shape check: single-cycle multipliers need fewer "
               "cycles but clock lower than the block-multiplier variants\n";
  report.write();
  return 0;
}
