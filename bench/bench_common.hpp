// Shared helpers for the table/figure reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper's
// evaluation (§VI) with the same rows/series layout; EXPERIMENTS.md records
// paper-vs-measured. The evaluation setup follows the paper: ADPCM decoder,
// 416-sample input vector, maximum unroll factor of 2 for inner loops,
// RF size 128, context size 256.
#pragma once

#include <iostream>
#include <map>

#include "apps/kernels.hpp"
#include "arch/factory.hpp"
#include "arch/resource_model.hpp"
#include "ctx/regalloc.hpp"
#include "host/token_machine.hpp"
#include "kir/lower_bytecode.hpp"
#include "kir/lower_cdfg.hpp"
#include "kir/passes.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "support/table.hpp"

namespace cgra::bench {

inline constexpr unsigned kAdpcmSamples = 416;  // paper §VI-B
inline constexpr unsigned kUnrollFactor = 2;    // paper §VI-B

/// The evaluation kernel, unrolled and lowered once.
struct AdpcmSetup {
  apps::Workload workload;
  kir::Function unrolled;
  Cdfg graph;

  static AdpcmSetup make() {
    AdpcmSetup s;
    s.workload = apps::makeAdpcm(kAdpcmSamples, /*seed=*/1);
    s.unrolled = kir::unrollLoops(s.workload.fn, kUnrollFactor,
                                  /*innermostOnly=*/true);
    s.graph = kir::lowerToCdfg(s.unrolled).graph;
    return s;
  }
};

/// One composition's measured results for the ADPCM kernel.
struct AdpcmRun {
  unsigned contexts = 0;
  unsigned maxRfEntries = 0;
  std::uint64_t cycles = 0;
  double schedulingMs = 0.0;
  double energy = 0.0;
  ResourceEstimate resources;
};

inline AdpcmRun runAdpcmOn(const AdpcmSetup& setup, const Composition& comp,
                           const SchedulerOptions& opts = {}) {
  AdpcmRun out;
  const Scheduler scheduler(comp, opts);
  const ScheduleReport result = scheduler.schedule(ScheduleRequest(setup.graph)).orThrow();
  const RegAllocation alloc = allocateRegisters(result.schedule, comp);

  out.contexts = result.schedule.length;
  out.maxRfEntries = alloc.maxRfEntries();
  out.schedulingMs = result.stats.wallTimeMs;
  out.resources = estimateResources(comp);

  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : result.schedule.liveIns)
    liveIns[lb.var] = setup.workload.initialLocals[lb.var];
  HostMemory heap = setup.workload.heap;
  const Simulator sim(comp, result.schedule);
  const SimResult simResult = sim.run(liveIns, heap);
  out.cycles = simResult.runCycles;
  out.energy = simResult.energy;
  return out;
}

/// Cycle count of the AMIDAR-like baseline on the same kernel.
inline std::uint64_t baselineCycles(const AdpcmSetup& setup) {
  const BytecodeFunction bc = kir::lowerToBytecode(setup.workload.fn);
  HostMemory heap = setup.workload.heap;
  const TokenMachine machine;
  return machine.run(bc, setup.workload.initialLocals, heap).cycles;
}

}  // namespace cgra::bench
