// Shared helpers for the table/figure reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper's
// evaluation (§VI) with the same rows/series layout; EXPERIMENTS.md records
// paper-vs-measured. The evaluation setup follows the paper: ADPCM decoder,
// 416-sample input vector, maximum unroll factor of 2 for inner loops,
// RF size 128, context size 256.
#pragma once

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <utility>

#include "apps/kernels.hpp"
#include "arch/factory.hpp"
#include "arch/resource_model.hpp"
#include "ctx/regalloc.hpp"
#include "host/token_machine.hpp"
#include "json/json.hpp"
#include "kir/lower_bytecode.hpp"
#include "kir/lower_cdfg.hpp"
#include "kir/passes.hpp"
#include "sched/scheduler.hpp"
#include "sim/report.hpp"
#include "sim/simulator.hpp"
#include "support/table.hpp"

namespace cgra::bench {

/// True when CGRA_BENCH_COUNTERS is set: benches then simulate with the
/// hardware-counter model on and attach the counters to their JSON artifact.
inline bool countersEnabled() {
  const char* v = std::getenv("CGRA_BENCH_COUNTERS");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

/// Directory receiving BENCH_<name>.json (CGRA_BENCH_DIR, default cwd).
inline std::string outputDir() {
  const char* v = std::getenv("CGRA_BENCH_DIR");
  return (v != nullptr && *v != '\0') ? v : ".";
}

/// Git revision recorded in the artifact: CGRA_GIT_REV env override first
/// (CI sets it on checkouts without .git), then the compile-time stamp.
inline std::string gitRev() {
  if (const char* v = std::getenv("CGRA_GIT_REV"); v != nullptr && *v != '\0')
    return v;
#ifdef CGRA_GIT_REV
  return CGRA_GIT_REV;
#else
  return "unknown";
#endif
}

/// Machine-readable bench artifact, schema "cgra-bench-v1":
///
///   { "schema": "cgra-bench-v1", "name": ..., "gitRev": ..., "wallMs": ...,
///     "metrics":  { ... },   // deterministic, lower-is-better; the
///                            // regression checker gates these at 10%
///     "timings":  { ... },   // wall-clock milliseconds; warn-only, so CI
///                            // does not flake on machine speed
///     "info":     { ... },   // strings, never compared
///     "counters": { ... } }  // per-series SimCounters (CGRA_BENCH_COUNTERS)
///
/// Every bench binary constructs one, records its table values as it prints
/// them, and calls write() last — tools/bench_compare.py consumes the files.
class BenchReport {
public:
  explicit BenchReport(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

  void metric(const std::string& key, double value) { metrics_[key] = value; }
  void metric(const std::string& key, std::uint64_t value) {
    metrics_[key] = value;
  }
  void metric(const std::string& key, unsigned value) {
    metrics_[key] = static_cast<std::uint64_t>(value);
  }
  void timing(const std::string& key, double ms) { timings_[key] = ms; }
  void info(const std::string& key, std::string value) {
    info_[key] = std::move(value);
  }
  void counters(const std::string& key, json::Value value) {
    counters_[key] = std::move(value);
  }

  /// Writes BENCH_<name>.json and announces the path on stdout.
  void write() {
    json::Object o;
    o["schema"] = "cgra-bench-v1";
    o["name"] = name_;
    o["gitRev"] = gitRev();
    o["wallMs"] = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
    o["metrics"] = std::move(metrics_);
    o["timings"] = std::move(timings_);
    o["info"] = std::move(info_);
    if (!counters_.empty()) o["counters"] = std::move(counters_);
    const std::string path = outputDir() + "/BENCH_" + name_ + ".json";
    json::writeFile(path, json::sortKeys(json::Value(std::move(o))));
    std::cout << "wrote " << path << "\n";
  }

private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  json::Object metrics_;
  json::Object timings_;
  json::Object info_;
  json::Object counters_;
};

inline constexpr unsigned kAdpcmSamples = 416;  // paper §VI-B
inline constexpr unsigned kUnrollFactor = 2;    // paper §VI-B

/// The evaluation kernel, unrolled and lowered once.
struct AdpcmSetup {
  apps::Workload workload;
  kir::Function unrolled;
  Cdfg graph;

  static AdpcmSetup make() {
    AdpcmSetup s;
    s.workload = apps::makeAdpcm(kAdpcmSamples, /*seed=*/1);
    s.unrolled = kir::unrollLoops(s.workload.fn, kUnrollFactor,
                                  /*innermostOnly=*/true);
    s.graph = kir::lowerToCdfg(s.unrolled).graph;
    return s;
  }
};

/// One composition's measured results for the ADPCM kernel.
struct AdpcmRun {
  unsigned contexts = 0;
  unsigned maxRfEntries = 0;
  std::uint64_t cycles = 0;
  double schedulingMs = 0.0;
  double energy = 0.0;
  ResourceEstimate resources;
  /// Combined static+runtime report; report.counters engaged when the bench
  /// ran under CGRA_BENCH_COUNTERS.
  Report report;
};

inline AdpcmRun runAdpcmOn(const AdpcmSetup& setup, const Composition& comp,
                           const SchedulerOptions& opts = {}) {
  AdpcmRun out;
  const Scheduler scheduler(comp, opts);
  const ScheduleReport result = scheduler.schedule(ScheduleRequest(setup.graph)).orThrow();
  const RegAllocation alloc = allocateRegisters(result.schedule, comp);

  out.contexts = result.schedule.length;
  out.maxRfEntries = alloc.maxRfEntries();
  out.schedulingMs = result.stats.wallTimeMs;
  out.resources = estimateResources(comp);

  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : result.schedule.liveIns)
    liveIns[lb.var] = setup.workload.initialLocals[lb.var];
  HostMemory heap = setup.workload.heap;
  const Simulator sim(comp, result.schedule);
  SimOptions simOpts;
  simOpts.collectCounters = countersEnabled();
  const SimResult simResult = sim.run(liveIns, heap, simOpts);
  out.cycles = simResult.runCycles;
  out.energy = simResult.energy;
  out.report = makeReport(result.schedule, comp, &result.stats, &simResult);
  return out;
}

/// Cycle count of the AMIDAR-like baseline on the same kernel.
inline std::uint64_t baselineCycles(const AdpcmSetup& setup) {
  const BytecodeFunction bc = kir::lowerToBytecode(setup.workload.fn);
  HostMemory heap = setup.workload.heap;
  const TokenMachine machine;
  return machine.run(bc, setup.workload.initialLocals, heap).cycles;
}

}  // namespace cgra::bench
