// Reproduces Table IV: "ADPCM decode execution times in milliseconds" —
// cycles divided by the achievable clock frequency for both multiplier
// implementations. The paper's conclusion: "Due to higher clock frequencies
// for CGRAs with block multipliers, the execution time is shorter in that
// case" — the 2-cycle multiplier wins in wall-clock despite more cycles.
//
// The 12 (mesh size × multiplier) scheduling problems are independent, so
// they run through the parallel sweep engine; simulation stays serial.
#include <deque>

#include "bench_common.hpp"
#include "sched/sweep.hpp"

int main() {
  using namespace cgra;
  using namespace cgra::bench;

  std::cout << "== Table IV: ADPCM decode execution times in milliseconds ==\n";
  const AdpcmSetup setup = AdpcmSetup::make();
  BenchReport report("table4_walltime");

  FactoryOptions single;
  single.blockMultiplier = false;

  // Schedule every variant in one sweep: rows alternate single/block per
  // mesh size, so job 2i is the single-cycle variant of meshSizes()[i].
  std::deque<Composition> comps;
  std::vector<SweepJob> jobs;
  for (unsigned n : meshSizes()) {
    for (const bool block : {false, true}) {
      comps.push_back(block ? makeMesh(n) : makeMesh(n, single));
      jobs.push_back(SweepJob{&comps.back(), &setup.graph,
                              comps.back().name() +
                                  (block ? "+block" : "+single"),
                              SchedulerOptions{}});
    }
  }
  const SweepReport sweep = runSweep(jobs);
  std::cout << "scheduled " << jobs.size() << " variants in "
            << fmt(sweep.wallTimeMs, 1) << " ms on " << sweep.threadsUsed
            << " thread(s), " << sweep.routingCacheEntries
            << " arch model(s)\n";
  report.timing("sweepWallMs", sweep.wallTimeMs);
  // Exclusive self-time of each scheduler pass, merged over the sweep's 12
  // jobs (DESIGN.md §13): gateable per pass via bench_compare --gate-timing.
  report.timing("passAnalysisMs", sweep.aggregate.passAnalysisMs);
  report.timing("passCandidateMs", sweep.aggregate.passCandidateMs);
  report.timing("passCostModelMs", sweep.aggregate.passCostModelMs);
  report.timing("passPlacementMs", sweep.aggregate.passPlacementMs);
  report.timing("passRoutingMs", sweep.aggregate.passRoutingMs);
  report.timing("passFusingMs", sweep.aggregate.passFusingMs);
  report.timing("passCboxMs", sweep.aggregate.passCboxMs);
  report.timing("passLoopMs", sweep.aggregate.passLoopMs);
  report.timing("passFinalizeMs", sweep.aggregate.passFinalizeMs);

  auto wallMs = [&](std::size_t job, const Composition& comp) -> double {
    const SweepJobResult& r = sweep.results[job];
    if (!r.ok) throw Error("table4: scheduling failed: " + r.error);
    std::map<VarId, std::int32_t> liveIns;
    for (const LiveBinding& lb : r.schedule.liveIns)
      liveIns[lb.var] = setup.workload.initialLocals[lb.var];
    HostMemory heap = setup.workload.heap;
    const Simulator sim(comp, r.schedule);
    SimOptions simOpts;
    simOpts.collectCounters = countersEnabled();
    const SimResult sr = sim.run(liveIns, heap, simOpts);
    if (sr.counters) report.counters(jobs[job].label, sr.counters->toJson());
    // Modeled milliseconds: deterministic cycles over the deterministic
    // frequency estimate — a gateable metric, not a wall-clock timing.
    return static_cast<double>(sr.runCycles) /
           (estimateResources(comp).frequencyMHz * 1000.0);
  };

  TextTable table({"", "4 PEs", "6 PEs", "8 PEs", "9 PEs", "12 PEs", "16 PEs"});
  std::vector<std::string> rowSingle{"Single cycle multiplier"};
  std::vector<std::string> rowBlock{"Dual cycle multiplier"};
  unsigned blockWins = 0;
  for (std::size_t i = 0; i < meshSizes().size(); ++i) {
    const double msSingle = wallMs(2 * i, comps[2 * i]);
    const double msBlock = wallMs(2 * i + 1, comps[2 * i + 1]);
    rowSingle.push_back(fmt(msSingle, 3));
    rowBlock.push_back(fmt(msBlock, 3));
    if (msBlock < msSingle) ++blockWins;
    const std::string mesh = std::to_string(meshSizes()[i]);
    report.metric("modeledMsSingle_mesh" + mesh, msSingle);
    report.metric("modeledMsBlock_mesh" + mesh, msBlock);
  }
  table.addRow(rowSingle);
  table.addRow(rowBlock);
  table.print(std::cout);

  std::cout << "\nblock (dual-cycle) multiplier wins wall-clock on "
            << blockWins << "/6 compositions (paper: 6/6)\n";
  report.write();
  return 0;
}
