// Reproduces Table IV: "ADPCM decode execution times in milliseconds" —
// cycles divided by the achievable clock frequency for both multiplier
// implementations. The paper's conclusion: "Due to higher clock frequencies
// for CGRAs with block multipliers, the execution time is shorter in that
// case" — the 2-cycle multiplier wins in wall-clock despite more cycles.
#include "bench_common.hpp"

int main() {
  using namespace cgra;
  using namespace cgra::bench;

  std::cout << "== Table IV: ADPCM decode execution times in milliseconds ==\n";
  const AdpcmSetup setup = AdpcmSetup::make();

  FactoryOptions single;
  single.blockMultiplier = false;

  TextTable table({"", "4 PEs", "6 PEs", "8 PEs", "9 PEs", "12 PEs", "16 PEs"});
  std::vector<std::string> rowSingle{"Single cycle multiplier"};
  std::vector<std::string> rowBlock{"Dual cycle multiplier"};
  unsigned blockWins = 0;
  for (unsigned n : meshSizes()) {
    const AdpcmRun runSingle = runAdpcmOn(setup, makeMesh(n, single));
    const AdpcmRun runBlock = runAdpcmOn(setup, makeMesh(n));
    const double msSingle = static_cast<double>(runSingle.cycles) /
                            (runSingle.resources.frequencyMHz * 1000.0);
    const double msBlock = static_cast<double>(runBlock.cycles) /
                           (runBlock.resources.frequencyMHz * 1000.0);
    rowSingle.push_back(fmt(msSingle, 3));
    rowBlock.push_back(fmt(msBlock, 3));
    if (msBlock < msSingle) ++blockWins;
  }
  table.addRow(rowSingle);
  table.addRow(rowBlock);
  table.print(std::cout);

  std::cout << "\nblock (dual-cycle) multiplier wins wall-clock on "
            << blockWins << "/6 compositions (paper: 6/6)\n";
  return 0;
}
