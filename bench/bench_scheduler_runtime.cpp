// Reproduces the scheduling-time statement of §VI-C: "For the ADPCM decoder
// the scheduling and context generation takes at most 3.1 s on an Intel
// Core i7-6700" — measured here with google-benchmark across compositions,
// separately for scheduling and context generation.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "ctx/contexts.hpp"

namespace {

using namespace cgra;
using namespace cgra::bench;

const AdpcmSetup& setup() {
  static const AdpcmSetup s = AdpcmSetup::make();
  return s;
}

void BM_ScheduleAdpcmMesh(benchmark::State& state) {
  const Composition comp = makeMesh(static_cast<unsigned>(state.range(0)));
  const Scheduler scheduler(comp);
  for (auto _ : state) {
    ScheduleReport result = scheduler.schedule(ScheduleRequest(setup().graph)).orThrow();
    benchmark::DoNotOptimize(result.schedule.length);
  }
}
BENCHMARK(BM_ScheduleAdpcmMesh)->Arg(4)->Arg(6)->Arg(8)->Arg(9)->Arg(12)->Arg(16);

void BM_ScheduleAdpcmIrregular(benchmark::State& state) {
  const Composition comp =
      makeIrregular(static_cast<char>('A' + state.range(0)));
  const Scheduler scheduler(comp);
  for (auto _ : state) {
    ScheduleReport result = scheduler.schedule(ScheduleRequest(setup().graph)).orThrow();
    benchmark::DoNotOptimize(result.schedule.length);
  }
}
BENCHMARK(BM_ScheduleAdpcmIrregular)->DenseRange(0, 5);

void BM_ContextGeneration(benchmark::State& state) {
  const Composition comp = makeMesh(static_cast<unsigned>(state.range(0)));
  const Scheduler scheduler(comp);
  const ScheduleReport result = scheduler.schedule(ScheduleRequest(setup().graph)).orThrow();
  for (auto _ : state) {
    ContextImages images = generateContexts(result.schedule, comp);
    benchmark::DoNotOptimize(images.totalBits());
  }
}
BENCHMARK(BM_ContextGeneration)->Arg(4)->Arg(9)->Arg(16);

void BM_LowerToCdfg(benchmark::State& state) {
  for (auto _ : state) {
    kir::LoweringResult lowered = kir::lowerToCdfg(setup().unrolled);
    benchmark::DoNotOptimize(lowered.graph.numNodes());
  }
}
BENCHMARK(BM_LowerToCdfg);

void BM_SimulateAdpcm416(benchmark::State& state) {
  const Composition comp = makeMesh(9);
  const Scheduler scheduler(comp);
  const ScheduleReport result = scheduler.schedule(ScheduleRequest(setup().graph)).orThrow();
  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : result.schedule.liveIns)
    liveIns[lb.var] = setup().workload.initialLocals[lb.var];
  const Simulator sim(comp, result.schedule);
  for (auto _ : state) {
    HostMemory heap = setup().workload.heap;
    SimResult r = sim.run(liveIns, heap);
    benchmark::DoNotOptimize(r.runCycles);
  }
}
BENCHMARK(BM_SimulateAdpcm416);

/// Console output as usual, plus every run's real time captured for the
/// BENCH_*.json artifact. All google-benchmark numbers are wall clock, so
/// they land in the warn-only "timings" section, never in gated metrics.
class RecordingReporter : public benchmark::ConsoleReporter {
public:
  std::map<std::string, double> timesMs;

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs)
      if (!run.error_occurred)
        // GetAdjustedRealTime reports in the run's own time unit; rescale
        // to milliseconds for the artifact.
        timesMs[run.benchmark_name()] =
            run.GetAdjustedRealTime() * 1e3 /
            benchmark::GetTimeUnitMultiplier(run.time_unit);
    ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  RecordingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  BenchReport report("scheduler_runtime");
  for (const auto& [name, ms] : reporter.timesMs) report.timing(name, ms);
  report.write();
  return 0;
}
