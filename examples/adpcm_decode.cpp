// Full reproduction of the paper's application example (§VI): the ADPCM
// decoder on the AMIDAR-like host with CGRA acceleration.
//
//  * runs the kernel on the baseline token machine and profiles it — the
//    profiler detects the hot loop exactly like AMIDAR's hardware profiler
//    triggers synthesis (Fig. 1);
//  * synthesizes the kernel for the 9-PE mesh (unroll factor 2, as in the
//    evaluation): CDFG → schedule → binary contexts;
//  * executes the invocation (live-in transfer, run, live-out transfer) on
//    the cycle-accurate simulator and verifies the decoded audio against
//    the interpreter bit-exactly;
//  * reports the speedup and estimated synthesis results.
#include <iostream>

#include "apps/kernels.hpp"
#include "arch/factory.hpp"
#include "arch/resource_model.hpp"
#include "ctx/contexts.hpp"
#include "host/profiler.hpp"
#include "host/token_machine.hpp"
#include "kir/interp.hpp"
#include "kir/lower_bytecode.hpp"
#include "kir/lower_cdfg.hpp"
#include "kir/passes.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace cgra;
  const apps::Workload w = apps::makeAdpcm(416, 1);

  // Golden result.
  HostMemory goldenHeap = w.heap;
  kir::Interpreter interp;
  const auto golden = interp.run(w.fn, w.initialLocals, goldenHeap);
  std::cout << "ADPCM decode, 416 samples (paper workload)\n";

  // Baseline execution + profiling (Fig. 1: "Profiling detects that a
  // bytecode sequence exceeds threshold").
  const BytecodeFunction bc = kir::lowerToBytecode(w.fn);
  HostMemory baselineHeap = w.heap;
  const TokenMachine machine;
  const TokenRunResult base = machine.run(bc, w.initialLocals, baselineHeap);
  std::cout << "baseline (AMIDAR-like token machine): " << base.cycles
            << " cycles for " << base.bytecodes << " bytecodes\n";

  Profiler profiler(/*threshold=*/100);
  HostMemory profHeap = w.heap;
  profiler.profile(bc, w.initialLocals, profHeap);
  for (const HotRegion& region : profiler.hotRegions())
    std::cout << "profiler: hot region pc[" << region.startPc << ".."
              << region.endPc << "] executed " << region.executions
              << " times -> synthesis candidate\n";

  // Synthesis: unroll, lower, schedule, generate contexts.
  const kir::Function unrolled = kir::unrollLoops(w.fn, 2, true);
  const kir::LoweringResult lowered = kir::lowerToCdfg(unrolled);
  const Composition comp = makeMesh(9);
  const Scheduler scheduler(comp);
  const ScheduleReport result = scheduler.schedule(ScheduleRequest(lowered.graph)).orThrow();
  const ContextImages images = generateContexts(result.schedule, comp);
  std::cout << "synthesized for " << comp.name() << ": "
            << result.schedule.length << " contexts, "
            << images.totalBits() << " context bits, scheduling took "
            << result.stats.wallTimeMs << " ms (paper: <= 3.1 s)\n";

  // Invocation on the CGRA.
  const Schedule runnable = decodeContexts(images, comp);
  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : runnable.liveIns)
    liveIns[lb.var] = w.initialLocals[lb.var];
  HostMemory cgraHeap = w.heap;
  const Simulator sim(comp, runnable);
  const SimResult r = sim.run(liveIns, cgraHeap);

  const bool match = cgraHeap == goldenHeap;
  std::cout << "CGRA execution: " << r.runCycles << " cycles ("
            << r.dmaLoads << " DMA loads, " << r.dmaStores
            << " DMA stores), audio output "
            << (match ? "matches" : "DOES NOT match")
            << " the reference decoder bit-exactly\n";
  std::cout << "speedup vs baseline: "
            << static_cast<double>(base.cycles) /
                   static_cast<double>(r.runCycles)
            << "x (paper: 7.3x on the 9-PE mesh)\n";

  const ResourceEstimate est = estimateResources(comp);
  std::cout << "estimated synthesis (Virtex-7 model): "
            << est.frequencyMHz << " MHz, LUT " << est.lutLogicPct()
            << "%, DSP " << est.dspPct() << "%, BRAM " << est.bramPct()
            << "%\n";
  return match ? 0 : 1;
}
