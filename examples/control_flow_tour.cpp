// Control-flow tour: shows how the scheduler maps the paper's headline
// features — nested data-dependent loops and if/else structures inside loop
// bodies — using speculation and predication (§V-B/C/H, Listing 1, Fig. 11).
//
// The kernel is a Collatz-style search: for each start value below a bound,
// iterate x -> x/2 or 3x+1 until x == 1 (a nested, data-dependent loop with
// an if/else body) and record the longest trajectory.
#include <fstream>
#include <iostream>

#include "arch/factory.hpp"
#include "kir/interp.hpp"
#include "kir/lower_cdfg.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace cgra;

  kir::FunctionBuilder b("collatz_longest");
  const auto hscratch = b.param("scratch");  // DMA presence for trace output
  const auto bound = b.param("bound");
  const auto best = b.localVar("best");
  const auto s = b.localVar("s");
  const auto x = b.localVar("x");
  const auto len = b.localVar("len");

  // Inner loop: if/else in the body, trip count data dependent.
  const auto innerBody = b.block({
      b.ifElse(b.eq(b.band(b.use(x), b.cint(1)), b.cint(0)),
               b.assign(x, b.shr(b.use(x), b.cint(1))),
               b.assign(x, b.add(b.mul(b.use(x), b.cint(3)), b.cint(1)))),
      b.assign(len, b.add(b.use(len), b.cint(1))),
  });
  const auto outerBody = b.block({
      b.assign(x, b.use(s)),
      b.assign(len, b.cint(0)),
      b.whileLoop(b.ne(b.use(x), b.cint(1)), innerBody),
      b.ifElse(b.gt(b.use(len), b.use(best)), b.assign(best, b.use(len))),
      b.arrayStore(b.use(hscratch), b.use(s), b.use(len)),
      b.assign(s, b.add(b.use(s), b.cint(1))),
  });
  const kir::Function fn = b.finish(b.block({
      b.assign(best, b.cint(0)),
      b.assign(s, b.cint(1)),
      b.whileLoop(b.lt(b.use(s), b.use(bound)), outerBody),
  }));
  std::cout << fn.toString() << "\n";

  const kir::LoweringResult lowered = kir::lowerToCdfg(fn);
  const Cdfg& g = lowered.graph;
  std::cout << "CDFG: " << g.numNodes() << " nodes, " << g.numLoops() - 1
            << " loops, " << g.numConditions() - 1 << " path conditions\n";
  std::ofstream("collatz_cdfg.dot") << g.toDot("collatz");
  std::cout << "wrote collatz_cdfg.dot\n\n";

  // Map onto the irregular composition F (inhomogeneous: only two PEs
  // multiply) — the scheduler handles it without manual intervention.
  const Composition comp = makeIrregular('F');
  const Scheduler scheduler(comp);
  const ScheduleReport result = scheduler.schedule(ScheduleRequest(g)).orThrow();
  std::cout << "schedule on " << comp.name() << " ("
            << result.schedule.length << " contexts):\n"
            << result.schedule.toString(comp) << "\n";

  // How the C-Box realizes the nested conditions: print the condition plan.
  std::cout << "loop intervals and back-branches:\n";
  for (const LoopInterval& li : result.schedule.loops)
    std::cout << "  loop " << li.loop << ": contexts [" << li.start << ", "
              << li.end << "], conditional jump back at t" << li.end << "\n";

  // Run it and check against the interpreter.
  HostMemory heap;
  const Handle scratch = heap.alloc(32);
  HostMemory goldenHeap = heap;
  std::vector<std::int32_t> locals(fn.numLocals(), 0);
  locals[hscratch] = scratch;
  locals[bound] = 12;
  kir::Interpreter interp;
  const auto golden = interp.run(fn, locals, goldenHeap);

  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : result.schedule.liveIns)
    liveIns[lb.var] = locals[lb.var];
  const Simulator sim(comp, result.schedule);
  const SimResult r = sim.run(liveIns, heap);

  std::cout << "\nCGRA: best=" << r.liveOuts.at(lowered.localToVar[best])
            << " in " << r.runCycles << " cycles; interpreter best="
            << golden.locals[best] << " — "
            << (heap == goldenHeap &&
                        r.liveOuts.at(lowered.localToVar[best]) ==
                            golden.locals[best]
                    ? "MATCH"
                    : "MISMATCH")
            << "\n";
  return 0;
}
