// Host/CGRA co-execution (the paper's Fig. 1 end-to-end flow): an audio
// application whose hot kernel is patched out of the host bytecode and
// forwarded to the CGRA.
//
//   stage 1 (host):  checksum the compressed input buffer
//   stage 2 (CGRA):  ADPCM-decode 416 samples   <-- INVOKE_CGRA patch
//   stage 3 (host):  scan the decoded audio for its peak amplitude
//
// All stages share one local-variable frame; the patched application is a
// single bytecode function (printable via disassemble) in which the whole
// decoder loop is one `invoke_cgra` instruction. The host is idle during
// the CGRA run, so cycle counts are additive.
#include <iostream>

#include "apps/kernels.hpp"
#include "arch/factory.hpp"
#include "kir/interp.hpp"
#include "sim/accelerated_host.hpp"

namespace {

using namespace cgra;

/// Declares the shared frame layout (must match apps::makeAdpcm's locals
/// 0..7) and returns the builder positioned to add stage-specific locals.
void declareSharedFrame(kir::FunctionBuilder& b) {
  for (const char* name : {"inbuf", "outbuf", "indexTable", "stepsizeTable",
                           "n", "valpred", "index", "gain"})
    b.param(name);
}

/// Pads the frame with placeholder locals so this stage's own locals land
/// beyond `upTo` — slots below that belong to other stages (the decoder
/// kernel's scratch locals and earlier stages' results) and must not be
/// reused, since the CGRA writes its live-outs back into its slots.
void padLocals(kir::FunctionBuilder& b, unsigned upTo) {
  for (unsigned i = static_cast<unsigned>(b.fn().numLocals()); i < upTo; ++i)
    b.localVar("$pad" + std::to_string(i));
}

kir::Function makeChecksumStage(unsigned frameBase) {
  kir::FunctionBuilder b("checksum_stage");
  declareSharedFrame(b);
  padLocals(b, frameBase);
  const auto inbuf = b.fn().localByName("inbuf");
  const auto n = b.fn().localByName("n");
  const auto sum = b.localVar("checksum");
  const auto i = b.localVar("ck_i");
  const auto body = b.block({
      b.assign(sum, b.bxor(b.mul(b.use(sum), b.cint(31)),
                           b.load(b.use(inbuf), b.use(i)))),
      b.assign(i, b.add(b.use(i), b.cint(1))),
  });
  return b.finish(b.block({
      b.assign(sum, b.cint(0)),
      b.assign(i, b.cint(0)),
      b.whileLoop(b.lt(b.use(i), b.shr(b.use(n), b.cint(1))), body),
  }));
}

kir::Function makePeakStage(unsigned frameBase) {
  kir::FunctionBuilder b("peak_stage");
  declareSharedFrame(b);
  padLocals(b, frameBase);
  const auto outbuf = b.fn().localByName("outbuf");
  const auto n = b.fn().localByName("n");
  const auto peak = b.localVar("peak");
  const auto i = b.localVar("pk_i");
  const auto v = b.localVar("pk_v");
  const auto body = b.block({
      b.assign(v, b.load(b.use(outbuf), b.use(i))),
      b.ifElse(b.lt(b.use(v), b.cint(0)), b.assign(v, b.neg(b.use(v)))),
      b.ifElse(b.gt(b.use(v), b.use(peak)), b.assign(peak, b.use(v))),
      b.assign(i, b.add(b.use(i), b.cint(1))),
  });
  return b.finish(b.block({
      b.assign(peak, b.cint(0)),
      b.assign(i, b.cint(0)),
      b.whileLoop(b.lt(b.use(i), b.use(n)), body),
  }));
}

}  // namespace

int main() {
  const apps::Workload w = apps::makeAdpcm(416, 1);
  // Frame layout: [0..7] shared parameters, then the decoder's scratch
  // locals, then each host stage's own slots.
  const unsigned decoderEnd = static_cast<unsigned>(w.fn.numLocals());
  const kir::Function checksum = makeChecksumStage(decoderEnd);
  const kir::Function peak =
      makePeakStage(static_cast<unsigned>(checksum.numLocals()));

  AcceleratedHost system(makeMesh(9));
  const unsigned decoder = system.addKernel(w.fn, /*unrollFactor=*/2);
  std::cout << "decoder synthesized: " << system.contextsUsed()
            << " contexts on " << system.composition().name() << "\n";

  const std::vector<Stage> stages = {HostStage{&checksum}, CgraStage{decoder},
                                     HostStage{&peak}};
  const BytecodeFunction app = system.assemble(stages, "audio_app");
  std::cout << "patched application: " << app.code.size()
            << " bytecodes (decoder loop = 1 invoke_cgra instruction)\n";

  std::vector<std::int32_t> locals = w.initialLocals;
  HostMemory heap = w.heap;
  const AcceleratedRunResult r = system.run(stages, locals, heap);

  std::cout << "checksum = " << r.locals[checksum.localByName("checksum")]
            << ", peak amplitude = " << r.locals[peak.localByName("peak")]
            << "\n";
  std::cout << "cycles: host " << r.hostCycles << " + CGRA " << r.cgraCycles
            << " (" << r.cgraInvocations << " invocation) = total "
            << r.totalCycles << "\n";

  // Compare against the same application executed entirely on the host.
  AcceleratedHost hostOnly(makeMesh(9));
  const std::vector<Stage> pureStages = {HostStage{&checksum},
                                         HostStage{&w.fn}, HostStage{&peak}};
  HostMemory heap2 = w.heap;
  const AcceleratedRunResult pure = system.run(pureStages, w.initialLocals, heap2);
  std::cout << "host-only execution: " << pure.totalCycles
            << " cycles -> application-level speedup "
            << static_cast<double>(pure.totalCycles) /
                   static_cast<double>(r.totalCycles)
            << "x\n";
  const bool match =
      heap == heap2 &&
      r.locals[peak.localByName("peak")] ==
          pure.locals[peak.localByName("peak")];
  std::cout << "results " << (match ? "match" : "DO NOT match")
            << " between accelerated and host-only runs\n";
  return match ? 0 : 1;
}
