// Composition explorer: the architecture-generator side of the toolflow
// (paper §IV-B, Fig. 7–9).
//
//  * writes a JSON description of a custom inhomogeneous, irregular
//    composition (only two PEs multiply, one PE has a DMA port, irregular
//    links) in the paper's Fig. 8/9 shape;
//  * parses it back and validates the structural constraints;
//  * schedules a kernel onto it without any manual intervention;
//  * emits the generated Verilog and a GraphViz rendering.
//
// Usage: composition_explorer [composition.json]
//   With an argument, loads that JSON instead of the built-in demo.
#include <fstream>
#include <iostream>

#include "apps/kernels.hpp"
#include "arch/composition.hpp"
#include "arch/resource_model.hpp"
#include "kir/lower_cdfg.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "vgen/verilog.hpp"

namespace {

cgra::Composition makeDemoComposition() {
  using namespace cgra;
  std::vector<PEDescriptor> pes;
  for (unsigned i = 0; i < 5; ++i) {
    PEDescriptor pe = PEDescriptor::fullInteger(
        "PE" + std::to_string(i), /*regfileSize=*/64, /*hasDma=*/i == 2);
    if (i != 1 && i != 3) pe.removeOp(Op::IMUL);  // inhomogeneous operators
    pes.push_back(std::move(pe));
  }
  Interconnect ic(5);  // irregular: a chain with one chord and one one-way
  ic.addBidirectional(0, 1);
  ic.addBidirectional(1, 2);
  ic.addBidirectional(2, 3);
  ic.addBidirectional(3, 4);
  ic.addBidirectional(1, 3);
  ic.addLink(4, 0);
  ic.computeShortestPaths();
  return Composition("demo5", std::move(pes), std::move(ic),
                     /*contextMemoryLength=*/256, /*cboxSlots=*/32);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cgra;

  Composition comp = makeDemoComposition();
  if (argc > 1) {
    std::cout << "loading composition from " << argv[1] << "\n";
    comp = Composition::fromJson(json::parseFile(argv[1]));
  } else {
    json::writeFile("demo5.json", comp.toJson());
    std::cout << "wrote demo5.json (Fig. 8/9-style description); reload it "
                 "with: composition_explorer demo5.json\n";
    comp = Composition::fromJson(json::parseFile("demo5.json"));
  }

  std::cout << "composition \"" << comp.name() << "\": " << comp.numPEs()
            << " PEs, " << comp.interconnect().numLinks() << " links, "
            << comp.dmaPEs().size() << " DMA PE(s), "
            << comp.pesSupporting(Op::IMUL).size()
            << " multiplier-capable PE(s)\n";

  // Schedule the FIR kernel onto it — no manual intervention needed even
  // though the composition is inhomogeneous and irregular.
  const apps::Workload w = apps::makeFir(16, 5, 9);
  const kir::LoweringResult lowered = kir::lowerToCdfg(w.fn);
  const Scheduler scheduler(comp);
  const ScheduleReport result = scheduler.schedule(ScheduleRequest(lowered.graph)).orThrow();
  std::cout << "scheduled " << w.fn.name() << ": " << result.schedule.length
            << " contexts, " << result.stats.copiesInserted
            << " routing copies\n";

  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : result.schedule.liveIns)
    liveIns[lb.var] = w.initialLocals[lb.var];
  HostMemory heap = w.heap;
  const Simulator sim(comp, result.schedule);
  const SimResult r = sim.run(liveIns, heap);
  std::cout << "simulated: " << r.runCycles << " cycles, energy "
            << r.energy << " (relative units)\n";

  const ResourceEstimate est = estimateResources(comp);
  std::cout << "estimated synthesis: " << est.frequencyMHz << " MHz, "
            << est.dsp << " DSPs, " << est.bram << " BRAMs\n";

  const std::string rtl = generateVerilog(comp);
  std::ofstream("demo5.v") << rtl;
  const VerilogStats vs = analyzeVerilog(rtl);
  std::cout << "wrote demo5.v: " << vs.modules << " modules, " << vs.lines
            << " lines\n";
  std::ofstream("demo5.dot") << comp.toDot();
  std::cout << "wrote demo5.dot\n";
  return 0;
}
