// Quickstart: the complete toolflow in ~80 lines.
//
//   1. Describe a kernel in KIR (a saxpy-like loop with a condition).
//   2. Lower it to the scheduler's CDFG.
//   3. Build a CGRA composition (2×2 mesh) and schedule the kernel.
//   4. Generate binary contexts.
//   5. Run the cycle-accurate simulator and read back the results.
//   6. Collect hardware counters and print the utilization report.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "arch/factory.hpp"
#include "ctx/contexts.hpp"
#include "kir/kir.hpp"
#include "kir/lower_cdfg.hpp"
#include "sched/scheduler.hpp"
#include "sim/report.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace cgra;

  // 1. The kernel: y[i] = a*x[i] + y[i], but clamp negative products to 0.
  kir::FunctionBuilder b("saxpy_clamped");
  const auto hx = b.param("x");
  const auto hy = b.param("y");
  const auto n = b.param("n");
  const auto a = b.param("a");
  const auto i = b.localVar("i");
  const auto p = b.localVar("p");

  const auto body = b.block({
      b.assign(p, b.mul(b.use(a), b.load(b.use(hx), b.use(i)))),
      b.ifElse(b.lt(b.use(p), b.cint(0)), b.assign(p, b.cint(0))),
      b.arrayStore(b.use(hy), b.use(i),
                   b.add(b.use(p), b.load(b.use(hy), b.use(i)))),
      b.assign(i, b.add(b.use(i), b.cint(1))),
  });
  const kir::Function fn = b.finish(b.block({
      b.assign(i, b.cint(0)),
      b.whileLoop(b.lt(b.use(i), b.use(n)), body),
  }));
  std::cout << fn.toString() << "\n";

  // 2. Lower to the control-and-data-flow graph.
  const kir::LoweringResult lowered = kir::lowerToCdfg(fn);
  std::cout << "CDFG: " << lowered.graph.numNodes() << " nodes, "
            << lowered.graph.numLoops() - 1 << " loop(s)\n";

  // 3. A 4-PE mesh composition and the scheduler.
  const Composition comp = makeMesh(4);
  const Scheduler scheduler(comp);
  const ScheduleReport result = scheduler.schedule(ScheduleRequest(lowered.graph)).orThrow();
  std::cout << "schedule: " << result.schedule.length << " contexts, "
            << result.stats.copiesInserted << " routing copies, "
            << result.stats.fusedWrites << " fused writes\n";

  // 4. Binary context images (left-edge register allocation + bit packing).
  const ContextImages images = generateContexts(result.schedule, comp);
  std::cout << "contexts: " << images.totalBits() << " bits total across "
            << comp.numPEs() << " PE memories + C-Box + CCU\n";

  // 5. Simulate the *decoded* images against a small input.
  HostMemory heap;
  const Handle x = heap.alloc({1, -2, 3, -4, 5, -6, 7, -8});
  const Handle y = heap.alloc({10, 10, 10, 10, 10, 10, 10, 10});

  const Schedule runnable = decodeContexts(images, comp);
  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : runnable.liveIns) {
    if (lowered.graph.variable(lb.var).name == "x") liveIns[lb.var] = x;
    if (lowered.graph.variable(lb.var).name == "y") liveIns[lb.var] = y;
    if (lowered.graph.variable(lb.var).name == "n") liveIns[lb.var] = 8;
    if (lowered.graph.variable(lb.var).name == "a") liveIns[lb.var] = 3;
  }
  const Simulator sim(comp, runnable);
  SimOptions simOpts;
  simOpts.collectCounters = true;  // off by default; ~free when off
  const SimResult r = sim.run(liveIns, heap, simOpts);

  std::cout << "ran " << r.runCycles << " cycles (invocation "
            << r.invocationCycles << " incl. transfers)\ny = [";
  for (std::int32_t v : heap.array(y)) std::cout << ' ' << v;
  std::cout << " ]  (expected [ 13 10 19 10 25 10 31 10 ])\n";

  // 6. The observability report: static schedule quality merged with the
  // run's hardware counters (`cgra-tool stats` / `simulate --counters`
  // print the same accessors).
  const Report report = makeReport(runnable, comp, &result.stats, &r);
  std::cout << "\nachieved utilization "
            << static_cast<int>(report.achievedUtilization() * 100)
            << "% (static " << static_cast<int>(report.staticUtilization() * 100)
            << "%), squash rate "
            << static_cast<int>(report.squashRate() * 100) << "%\n"
            << utilizationHeatmap(runnable, comp, &*r.counters);
  return 0;
}
