# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/cgra-tool" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_describe "/root/repo/build/tools/cgra-tool" "describe" "--comp" "F")
set_tests_properties(cli_describe PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_schedule "/root/repo/build/tools/cgra-tool" "schedule" "--comp" "mesh9" "--kernel" "adpcm" "--unroll" "2" "--gantt")
set_tests_properties(cli_schedule PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/cgra-tool" "simulate" "--comp" "mesh8" "--kernel" "sobel" "--baseline")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_synthesize "/root/repo/build/tools/cgra-tool" "synthesize" "--kernels" "gcd,ewma")
set_tests_properties(cli_synthesize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_kernel_file "/root/repo/build/tools/cgra-tool" "simulate" "--comp" "mesh4" "--kernel-file" "/root/repo/tools/../examples/kernels/popcount_sum.kir" "--array" "data=7,255,1,0" "--local" "n=4" "--baseline")
set_tests_properties(cli_kernel_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_kernel_file2 "/root/repo/build/tools/cgra-tool" "simulate" "--comp" "F" "--kernel-file" "/root/repo/tools/../examples/kernels/saturating_diff.kir" "--array" "a=10,20,30" "--array" "b=5,50,0" "--array" "out=0,0,0" "--local" "n=3" "--local" "limit=15")
set_tests_properties(cli_kernel_file2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze "/root/repo/build/tools/cgra-tool" "analyze" "--comp" "mesh8" "--kernel" "matmul")
set_tests_properties(cli_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_memfiles "/root/repo/build/tools/cgra-tool" "schedule" "--comp" "mesh4" "--kernel" "gcd" "--memfiles" "gcd_mem" "--contexts" "gcd_ctx.json")
set_tests_properties(cli_memfiles PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
