file(REMOVE_RECURSE
  "CMakeFiles/cgra-tool.dir/cgra_tool.cpp.o"
  "CMakeFiles/cgra-tool.dir/cgra_tool.cpp.o.d"
  "cgra-tool"
  "cgra-tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgra-tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
