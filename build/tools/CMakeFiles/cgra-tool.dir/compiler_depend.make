# Empty compiler generated dependencies file for cgra-tool.
# This may be replaced when dependencies are built.
