# Empty compiler generated dependencies file for bench_mii_headroom.
# This may be replaced when dependencies are built.
