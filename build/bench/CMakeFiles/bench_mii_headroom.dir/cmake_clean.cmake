file(REMOVE_RECURSE
  "CMakeFiles/bench_mii_headroom.dir/bench_mii_headroom.cpp.o"
  "CMakeFiles/bench_mii_headroom.dir/bench_mii_headroom.cpp.o.d"
  "bench_mii_headroom"
  "bench_mii_headroom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mii_headroom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
