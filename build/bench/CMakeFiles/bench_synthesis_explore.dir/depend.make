# Empty dependencies file for bench_synthesis_explore.
# This may be replaced when dependencies are built.
