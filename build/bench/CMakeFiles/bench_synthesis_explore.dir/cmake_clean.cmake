file(REMOVE_RECURSE
  "CMakeFiles/bench_synthesis_explore.dir/bench_synthesis_explore.cpp.o"
  "CMakeFiles/bench_synthesis_explore.dir/bench_synthesis_explore.cpp.o.d"
  "bench_synthesis_explore"
  "bench_synthesis_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synthesis_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
