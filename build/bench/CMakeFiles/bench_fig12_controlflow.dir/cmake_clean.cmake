file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_controlflow.dir/bench_fig12_controlflow.cpp.o"
  "CMakeFiles/bench_fig12_controlflow.dir/bench_fig12_controlflow.cpp.o.d"
  "bench_fig12_controlflow"
  "bench_fig12_controlflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_controlflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
