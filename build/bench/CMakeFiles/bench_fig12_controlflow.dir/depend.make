# Empty dependencies file for bench_fig12_controlflow.
# This may be replaced when dependencies are built.
