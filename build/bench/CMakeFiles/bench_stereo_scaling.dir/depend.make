# Empty dependencies file for bench_stereo_scaling.
# This may be replaced when dependencies are built.
