file(REMOVE_RECURSE
  "CMakeFiles/bench_stereo_scaling.dir/bench_stereo_scaling.cpp.o"
  "CMakeFiles/bench_stereo_scaling.dir/bench_stereo_scaling.cpp.o.d"
  "bench_stereo_scaling"
  "bench_stereo_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stereo_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
