file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_multiplier.dir/bench_table3_multiplier.cpp.o"
  "CMakeFiles/bench_table3_multiplier.dir/bench_table3_multiplier.cpp.o.d"
  "bench_table3_multiplier"
  "bench_table3_multiplier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_multiplier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
