# Empty compiler generated dependencies file for bench_table3_multiplier.
# This may be replaced when dependencies are built.
