file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_scheduler.dir/bench_ablation_scheduler.cpp.o"
  "CMakeFiles/bench_ablation_scheduler.dir/bench_ablation_scheduler.cpp.o.d"
  "bench_ablation_scheduler"
  "bench_ablation_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
