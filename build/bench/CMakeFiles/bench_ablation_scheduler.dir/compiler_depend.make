# Empty compiler generated dependencies file for bench_ablation_scheduler.
# This may be replaced when dependencies are built.
