file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_execution.dir/bench_table2_execution.cpp.o"
  "CMakeFiles/bench_table2_execution.dir/bench_table2_execution.cpp.o.d"
  "bench_table2_execution"
  "bench_table2_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
