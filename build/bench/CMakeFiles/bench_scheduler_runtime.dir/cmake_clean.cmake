file(REMOVE_RECURSE
  "CMakeFiles/bench_scheduler_runtime.dir/bench_scheduler_runtime.cpp.o"
  "CMakeFiles/bench_scheduler_runtime.dir/bench_scheduler_runtime.cpp.o.d"
  "bench_scheduler_runtime"
  "bench_scheduler_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scheduler_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
