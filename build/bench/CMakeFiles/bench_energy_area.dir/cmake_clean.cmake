file(REMOVE_RECURSE
  "CMakeFiles/bench_energy_area.dir/bench_energy_area.cpp.o"
  "CMakeFiles/bench_energy_area.dir/bench_energy_area.cpp.o.d"
  "bench_energy_area"
  "bench_energy_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_energy_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
