# Empty compiler generated dependencies file for bench_energy_area.
# This may be replaced when dependencies are built.
