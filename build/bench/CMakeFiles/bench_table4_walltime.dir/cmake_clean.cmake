file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_walltime.dir/bench_table4_walltime.cpp.o"
  "CMakeFiles/bench_table4_walltime.dir/bench_table4_walltime.cpp.o.d"
  "bench_table4_walltime"
  "bench_table4_walltime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_walltime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
