// Generated CGRA composition "demo5": 5 PEs, 11 links, context depth 256, C-Box slots 32
// Generator: cgra-scheduler reproduction (IPDPSW'16 toolflow)

// ---- static structures: parameterized, shared by all compositions ----

module context_memory #(parameter WIDTH = 32, parameter DEPTH = 256) (
  input  wire                      clk,
  input  wire [7:0]            ccnt,
  input  wire                      wr_en,
  input  wire [7:0]            wr_addr,
  input  wire [WIDTH-1:0]          wr_data,
  output reg  [WIDTH-1:0]          context_word
);
  (* ram_style = "block" *) reg [WIDTH-1:0] mem [0:DEPTH-1];
  always @(posedge clk) begin
    if (wr_en) mem[wr_addr] <= wr_data;
    context_word <= mem[ccnt];
  end
endmodule

module regfile #(parameter ADDR = 7) (
  input  wire            clk,
  input  wire            wr_en,
  input  wire [ADDR-1:0] wr_addr,
  input  wire [31:0]     wr_data,
  input  wire [ADDR-1:0] rd_addr_a,
  input  wire [ADDR-1:0] rd_addr_b,
  input  wire [ADDR-1:0] rd_addr_out,
  input  wire [ADDR-1:0] rd_addr_idx,
  output wire [31:0]     rd_a,
  output wire [31:0]     rd_b,
  output wire [31:0]     rd_out,
  output wire [31:0]     rd_idx
);
  reg [31:0] mem [0:(1<<ADDR)-1];
  always @(posedge clk) if (wr_en) mem[wr_addr] <= wr_data;
  assign rd_a   = mem[rd_addr_a];
  assign rd_b   = mem[rd_addr_b];
  assign rd_out = mem[rd_addr_out];
  assign rd_idx = mem[rd_addr_idx];
endmodule

module cbox #(parameter SLOTS = 32) (
  input  wire                 clk,
  input  wire                 status,
  input  wire                 status_valid,
  input  wire                 in_a_stored,
  input  wire [4:0]           addr_a,
  input  wire                 inv_a,
  input  wire                 use_b,
  input  wire [4:0]           addr_b,
  input  wire                 inv_b,
  input  wire [1:0]           logic_op,
  input  wire                 wr_en,
  input  wire [4:0]           addr_wr,
  input  wire [4:0]           addr_pe,
  input  wire                 inv_pe,
  input  wire [4:0]           addr_ctrl,
  input  wire                 inv_ctrl,
  output wire                 out_pe,
  output wire                 out_ctrl
);
  reg mem [0:SLOTS-1];
  wire a = (in_a_stored ? mem[addr_a] : (status & status_valid)) ^ inv_a;
  wire b = (mem[addr_b]) ^ inv_b;
  wire combined = (logic_op == 2'd0) ? a :
                  (logic_op == 2'd1) ? (a & (use_b ? b : 1'b1)) :
                                        (a | (use_b ? b : 1'b0));
  always @(posedge clk) if (wr_en) mem[addr_wr] <= combined;
  assign out_pe   = mem[addr_pe] ^ inv_pe;
  assign out_ctrl = mem[addr_ctrl] ^ inv_ctrl;
endmodule

module ccu #(parameter ADDR = 8) (
  input  wire            clk,
  input  wire            rst,
  input  wire            run,
  input  wire [ADDR-1:0] start_ccnt,
  input  wire            branch_present,
  input  wire            branch_conditional,
  input  wire            branch_sel,
  input  wire [ADDR-1:0] branch_target,
  input  wire [ADDR-1:0] last_context,
  output reg  [ADDR-1:0] ccnt,
  output wire            done
);
  wire take = branch_present & (~branch_conditional | branch_sel);
  assign done = ccnt == last_context;
  always @(posedge clk) begin
    if (rst)            ccnt <= start_ccnt;
    else if (run & ~done) ccnt <= take ? branch_target : ccnt + 1'b1;
  end
endmodule

// ---- PE 0 (PE0): 15 operations, 2 input sources ----
module pe0 (
  input  wire        clk,
  input  wire        rst,
  input  wire [31:0] in0,  // from PE 1
  input  wire [31:0] in1,  // from PE 4
  input  wire [31:0] livein,
  input  wire        livein_valid,
  input  wire [5:0]  livein_addr,
  input  wire        pred,
  input  wire [63:0] context_word,
  output wire [31:0] rf_out,
  output wire [31:0] liveout,
  output wire        status
);
  wire        op_present = context_word[0];
  wire [4:0]  opcode     = context_word[5:1];
  wire [1:0]  sel_kind_a = context_word[7:6];
  wire [0:0]  sel_src_a  = context_word[8:8];
  wire [5:0]  rf_addr_a  = context_word[14:9];
  // ... remaining operand/dest/pred fields decoded equivalently
  reg [31:0] route_a;
  always @(*) begin
    case (sel_src_a)
      1'd0: route_a = in0;
      1'd1: route_a = in1;
      default: route_a = {32{1'b0}};
    endcase
  end
  wire [31:0] rf_a, rf_b, rf_idx;
  wire [31:0] op_a = (sel_kind_a == 2'd2) ? route_a : rf_a;
  wire [31:0] op_b = rf_b;
  wire [31:0] imm  = context_word[63:32];
  reg [31:0] alu_y;
  reg        alu_status;
  always @(*) begin
    alu_y = {32{1'b0}};
    alu_status = 1'b0;
    case (opcode)
      5'd1: alu_y = op_a;  // MOVE
      5'd2: alu_y = imm;  // CONST
      5'd3: alu_y = op_a + op_b;  // IADD
      5'd4: alu_y = op_a - op_b;  // ISUB
      5'd6: alu_y = -op_a;  // INEG
      5'd7: alu_y = op_a & op_b;  // IAND
      5'd8: alu_y = op_a | op_b;  // IOR
      5'd9: alu_y = op_a ^ op_b;  // IXOR
      5'd10: alu_y = op_a << op_b[4:0];  // ISHL
      5'd11: alu_y = $signed(op_a) >>> op_b[4:0];  // ISHR
      5'd12: alu_y = op_a >> op_b[4:0];  // IUSHR
      5'd13: alu_status = op_a == op_b;  // IFEQ
      5'd14: alu_status = op_a != op_b;  // IFNE
      5'd15: alu_status = $signed(op_a) < $signed(op_b);  // IFLT
      5'd16: alu_status = $signed(op_a) >= $signed(op_b);  // IFGE
      5'd17: alu_status = $signed(op_a) > $signed(op_b);  // IFGT
      5'd18: alu_status = $signed(op_a) <= $signed(op_b);  // IFLE
      default: ;
    endcase
  end
  wire rf_we = op_present & pred;
  wire [31:0] wr_data = livein_valid ? livein : alu_y;
  regfile #(.ADDR(6)) rf (
    .clk(clk), .wr_en(rf_we | livein_valid),
    .wr_addr(livein_valid ? livein_addr : context_word[15+:6]),
    .wr_data(wr_data),
    .rd_addr_a(rf_addr_a), .rd_addr_b(rf_addr_a), .rd_addr_out(rf_addr_a), .rd_addr_idx(rf_addr_a),
    .rd_a(rf_a), .rd_b(rf_b), .rd_out(rf_out), .rd_idx(rf_idx));
  assign liveout = rf_out;
  assign status  = alu_status;
endmodule

// ---- PE 1 (PE1): 16 operations, 3 input sources ----
module pe1 (
  input  wire        clk,
  input  wire        rst,
  input  wire [31:0] in0,  // from PE 0
  input  wire [31:0] in1,  // from PE 2
  input  wire [31:0] in2,  // from PE 3
  input  wire [31:0] livein,
  input  wire        livein_valid,
  input  wire [5:0]  livein_addr,
  input  wire        pred,
  input  wire [63:0] context_word,
  output wire [31:0] rf_out,
  output wire [31:0] liveout,
  output wire        status
);
  wire        op_present = context_word[0];
  wire [4:0]  opcode     = context_word[5:1];
  wire [1:0]  sel_kind_a = context_word[7:6];
  wire [1:0]  sel_src_a  = context_word[9:8];
  wire [5:0]  rf_addr_a  = context_word[15:10];
  // ... remaining operand/dest/pred fields decoded equivalently
  reg [31:0] route_a;
  always @(*) begin
    case (sel_src_a)
      2'd0: route_a = in0;
      2'd1: route_a = in1;
      2'd2: route_a = in2;
      default: route_a = {32{1'b0}};
    endcase
  end
  wire [31:0] rf_a, rf_b, rf_idx;
  wire [31:0] op_a = (sel_kind_a == 2'd2) ? route_a : rf_a;
  wire [31:0] op_b = rf_b;
  wire [31:0] imm  = context_word[63:32];
  reg [31:0] alu_y;
  reg        alu_status;
  always @(*) begin
    alu_y = {32{1'b0}};
    alu_status = 1'b0;
    case (opcode)
      5'd1: alu_y = op_a;  // MOVE
      5'd2: alu_y = imm;  // CONST
      5'd3: alu_y = op_a + op_b;  // IADD
      5'd4: alu_y = op_a - op_b;  // ISUB
      5'd5: alu_y = op_a * op_b;  // IMUL
      5'd6: alu_y = -op_a;  // INEG
      5'd7: alu_y = op_a & op_b;  // IAND
      5'd8: alu_y = op_a | op_b;  // IOR
      5'd9: alu_y = op_a ^ op_b;  // IXOR
      5'd10: alu_y = op_a << op_b[4:0];  // ISHL
      5'd11: alu_y = $signed(op_a) >>> op_b[4:0];  // ISHR
      5'd12: alu_y = op_a >> op_b[4:0];  // IUSHR
      5'd13: alu_status = op_a == op_b;  // IFEQ
      5'd14: alu_status = op_a != op_b;  // IFNE
      5'd15: alu_status = $signed(op_a) < $signed(op_b);  // IFLT
      5'd16: alu_status = $signed(op_a) >= $signed(op_b);  // IFGE
      5'd17: alu_status = $signed(op_a) > $signed(op_b);  // IFGT
      5'd18: alu_status = $signed(op_a) <= $signed(op_b);  // IFLE
      default: ;
    endcase
  end
  wire rf_we = op_present & pred;
  wire [31:0] wr_data = livein_valid ? livein : alu_y;
  regfile #(.ADDR(6)) rf (
    .clk(clk), .wr_en(rf_we | livein_valid),
    .wr_addr(livein_valid ? livein_addr : context_word[16+:6]),
    .wr_data(wr_data),
    .rd_addr_a(rf_addr_a), .rd_addr_b(rf_addr_a), .rd_addr_out(rf_addr_a), .rd_addr_idx(rf_addr_a),
    .rd_a(rf_a), .rd_b(rf_b), .rd_out(rf_out), .rd_idx(rf_idx));
  assign liveout = rf_out;
  assign status  = alu_status;
endmodule

// ---- PE 2 (PE2): with DMA, 15 operations, 2 input sources ----
module pe2 (
  input  wire        clk,
  input  wire        rst,
  input  wire [31:0] in0,  // from PE 1
  input  wire [31:0] in1,  // from PE 3
  input  wire [31:0] livein,
  input  wire        livein_valid,
  input  wire [5:0]  livein_addr,
  input  wire        pred,
  input  wire [63:0] context_word,
  output wire [31:0] dma_addr,
  output wire [31:0] dma_wdata,
  output wire        dma_req,
  output wire        dma_we,
  input  wire [31:0] dma_rdata,
  input  wire        dma_ack,
  output wire [31:0] rf_out,
  output wire [31:0] liveout,
  output wire        status
);
  wire        op_present = context_word[0];
  wire [4:0]  opcode     = context_word[5:1];
  wire [1:0]  sel_kind_a = context_word[7:6];
  wire [0:0]  sel_src_a  = context_word[8:8];
  wire [5:0]  rf_addr_a  = context_word[14:9];
  // ... remaining operand/dest/pred fields decoded equivalently
  reg [31:0] route_a;
  always @(*) begin
    case (sel_src_a)
      1'd0: route_a = in0;
      1'd1: route_a = in1;
      default: route_a = {32{1'b0}};
    endcase
  end
  wire [31:0] rf_a, rf_b, rf_idx;
  wire [31:0] op_a = (sel_kind_a == 2'd2) ? route_a : rf_a;
  wire [31:0] op_b = rf_b;
  wire [31:0] imm  = context_word[63:32];
  reg [31:0] alu_y;
  reg        alu_status;
  always @(*) begin
    alu_y = {32{1'b0}};
    alu_status = 1'b0;
    case (opcode)
      5'd1: alu_y = op_a;  // MOVE
      5'd2: alu_y = imm;  // CONST
      5'd3: alu_y = op_a + op_b;  // IADD
      5'd4: alu_y = op_a - op_b;  // ISUB
      5'd6: alu_y = -op_a;  // INEG
      5'd7: alu_y = op_a & op_b;  // IAND
      5'd8: alu_y = op_a | op_b;  // IOR
      5'd9: alu_y = op_a ^ op_b;  // IXOR
      5'd10: alu_y = op_a << op_b[4:0];  // ISHL
      5'd11: alu_y = $signed(op_a) >>> op_b[4:0];  // ISHR
      5'd12: alu_y = op_a >> op_b[4:0];  // IUSHR
      5'd13: alu_status = op_a == op_b;  // IFEQ
      5'd14: alu_status = op_a != op_b;  // IFNE
      5'd15: alu_status = $signed(op_a) < $signed(op_b);  // IFLT
      5'd16: alu_status = $signed(op_a) >= $signed(op_b);  // IFGE
      5'd17: alu_status = $signed(op_a) > $signed(op_b);  // IFGT
      5'd18: alu_status = $signed(op_a) <= $signed(op_b);  // IFLE
      default: ;
    endcase
  end
  assign dma_req   = op_present & (opcode == 5'd19 || opcode == 5'd20) & pred;
  assign dma_we    = opcode == 5'd20;
  assign dma_addr  = op_a + rf_idx;
  assign dma_wdata = op_b;
  wire rf_we = op_present & pred & ~dma_req | (dma_ack & ~dma_we);
  wire [31:0] wr_data = livein_valid ? livein : (dma_ack ? dma_rdata : alu_y);
  regfile #(.ADDR(6)) rf (
    .clk(clk), .wr_en(rf_we | livein_valid),
    .wr_addr(livein_valid ? livein_addr : context_word[15+:6]),
    .wr_data(wr_data),
    .rd_addr_a(rf_addr_a), .rd_addr_b(rf_addr_a), .rd_addr_out(rf_addr_a), .rd_addr_idx(rf_addr_a),
    .rd_a(rf_a), .rd_b(rf_b), .rd_out(rf_out), .rd_idx(rf_idx));
  assign liveout = rf_out;
  assign status  = alu_status;
endmodule

// ---- PE 3 (PE3): 16 operations, 3 input sources ----
module pe3 (
  input  wire        clk,
  input  wire        rst,
  input  wire [31:0] in0,  // from PE 2
  input  wire [31:0] in1,  // from PE 4
  input  wire [31:0] in2,  // from PE 1
  input  wire [31:0] livein,
  input  wire        livein_valid,
  input  wire [5:0]  livein_addr,
  input  wire        pred,
  input  wire [63:0] context_word,
  output wire [31:0] rf_out,
  output wire [31:0] liveout,
  output wire        status
);
  wire        op_present = context_word[0];
  wire [4:0]  opcode     = context_word[5:1];
  wire [1:0]  sel_kind_a = context_word[7:6];
  wire [1:0]  sel_src_a  = context_word[9:8];
  wire [5:0]  rf_addr_a  = context_word[15:10];
  // ... remaining operand/dest/pred fields decoded equivalently
  reg [31:0] route_a;
  always @(*) begin
    case (sel_src_a)
      2'd0: route_a = in0;
      2'd1: route_a = in1;
      2'd2: route_a = in2;
      default: route_a = {32{1'b0}};
    endcase
  end
  wire [31:0] rf_a, rf_b, rf_idx;
  wire [31:0] op_a = (sel_kind_a == 2'd2) ? route_a : rf_a;
  wire [31:0] op_b = rf_b;
  wire [31:0] imm  = context_word[63:32];
  reg [31:0] alu_y;
  reg        alu_status;
  always @(*) begin
    alu_y = {32{1'b0}};
    alu_status = 1'b0;
    case (opcode)
      5'd1: alu_y = op_a;  // MOVE
      5'd2: alu_y = imm;  // CONST
      5'd3: alu_y = op_a + op_b;  // IADD
      5'd4: alu_y = op_a - op_b;  // ISUB
      5'd5: alu_y = op_a * op_b;  // IMUL
      5'd6: alu_y = -op_a;  // INEG
      5'd7: alu_y = op_a & op_b;  // IAND
      5'd8: alu_y = op_a | op_b;  // IOR
      5'd9: alu_y = op_a ^ op_b;  // IXOR
      5'd10: alu_y = op_a << op_b[4:0];  // ISHL
      5'd11: alu_y = $signed(op_a) >>> op_b[4:0];  // ISHR
      5'd12: alu_y = op_a >> op_b[4:0];  // IUSHR
      5'd13: alu_status = op_a == op_b;  // IFEQ
      5'd14: alu_status = op_a != op_b;  // IFNE
      5'd15: alu_status = $signed(op_a) < $signed(op_b);  // IFLT
      5'd16: alu_status = $signed(op_a) >= $signed(op_b);  // IFGE
      5'd17: alu_status = $signed(op_a) > $signed(op_b);  // IFGT
      5'd18: alu_status = $signed(op_a) <= $signed(op_b);  // IFLE
      default: ;
    endcase
  end
  wire rf_we = op_present & pred;
  wire [31:0] wr_data = livein_valid ? livein : alu_y;
  regfile #(.ADDR(6)) rf (
    .clk(clk), .wr_en(rf_we | livein_valid),
    .wr_addr(livein_valid ? livein_addr : context_word[16+:6]),
    .wr_data(wr_data),
    .rd_addr_a(rf_addr_a), .rd_addr_b(rf_addr_a), .rd_addr_out(rf_addr_a), .rd_addr_idx(rf_addr_a),
    .rd_a(rf_a), .rd_b(rf_b), .rd_out(rf_out), .rd_idx(rf_idx));
  assign liveout = rf_out;
  assign status  = alu_status;
endmodule

// ---- PE 4 (PE4): 15 operations, 1 input sources ----
module pe4 (
  input  wire        clk,
  input  wire        rst,
  input  wire [31:0] in0,  // from PE 3
  input  wire [31:0] livein,
  input  wire        livein_valid,
  input  wire [5:0]  livein_addr,
  input  wire        pred,
  input  wire [63:0] context_word,
  output wire [31:0] rf_out,
  output wire [31:0] liveout,
  output wire        status
);
  wire        op_present = context_word[0];
  wire [4:0]  opcode     = context_word[5:1];
  wire [1:0]  sel_kind_a = context_word[7:6];
  wire [0:0]  sel_src_a  = context_word[8:8];
  wire [5:0]  rf_addr_a  = context_word[14:9];
  // ... remaining operand/dest/pred fields decoded equivalently
  reg [31:0] route_a;
  always @(*) begin
    case (sel_src_a)
      1'd0: route_a = in0;
      default: route_a = {32{1'b0}};
    endcase
  end
  wire [31:0] rf_a, rf_b, rf_idx;
  wire [31:0] op_a = (sel_kind_a == 2'd2) ? route_a : rf_a;
  wire [31:0] op_b = rf_b;
  wire [31:0] imm  = context_word[63:32];
  reg [31:0] alu_y;
  reg        alu_status;
  always @(*) begin
    alu_y = {32{1'b0}};
    alu_status = 1'b0;
    case (opcode)
      5'd1: alu_y = op_a;  // MOVE
      5'd2: alu_y = imm;  // CONST
      5'd3: alu_y = op_a + op_b;  // IADD
      5'd4: alu_y = op_a - op_b;  // ISUB
      5'd6: alu_y = -op_a;  // INEG
      5'd7: alu_y = op_a & op_b;  // IAND
      5'd8: alu_y = op_a | op_b;  // IOR
      5'd9: alu_y = op_a ^ op_b;  // IXOR
      5'd10: alu_y = op_a << op_b[4:0];  // ISHL
      5'd11: alu_y = $signed(op_a) >>> op_b[4:0];  // ISHR
      5'd12: alu_y = op_a >> op_b[4:0];  // IUSHR
      5'd13: alu_status = op_a == op_b;  // IFEQ
      5'd14: alu_status = op_a != op_b;  // IFNE
      5'd15: alu_status = $signed(op_a) < $signed(op_b);  // IFLT
      5'd16: alu_status = $signed(op_a) >= $signed(op_b);  // IFGE
      5'd17: alu_status = $signed(op_a) > $signed(op_b);  // IFGT
      5'd18: alu_status = $signed(op_a) <= $signed(op_b);  // IFLE
      default: ;
    endcase
  end
  wire rf_we = op_present & pred;
  wire [31:0] wr_data = livein_valid ? livein : alu_y;
  regfile #(.ADDR(6)) rf (
    .clk(clk), .wr_en(rf_we | livein_valid),
    .wr_addr(livein_valid ? livein_addr : context_word[15+:6]),
    .wr_data(wr_data),
    .rd_addr_a(rf_addr_a), .rd_addr_b(rf_addr_a), .rd_addr_out(rf_addr_a), .rd_addr_idx(rf_addr_a),
    .rd_a(rf_a), .rd_b(rf_b), .rd_out(rf_out), .rd_idx(rf_idx));
  assign liveout = rf_out;
  assign status  = alu_status;
endmodule

// ---- top level: interconnect as an array of wires (§IV-B) ----
module demo5_top (
  input  wire clk,
  input  wire rst,
  input  wire run,
  input  wire [7:0] start_ccnt,
  output wire done
);
  wire [31:0] rf_out [0:4];
  wire status [0:4];
  wire [7:0] ccnt;
  wire out_pe, out_ctrl;
  wire [63:0] ctx0;
  context_memory #(.WIDTH(64)) cm0 (.clk(clk), .ccnt(ccnt), .wr_en(1'b0), .wr_addr(8'd0), .wr_data(64'd0), .context_word(ctx0));
  pe0 u_pe0 (.clk(clk), .rst(rst),
    .in0(rf_out[1]), .in1(rf_out[4]), 
    .livein({32{1'b0}}), .livein_valid(1'b0), .livein_addr('d0), .pred(out_pe),
    .context_word(ctx0),
    .rf_out(rf_out[0]), .liveout(), .status(status[0]));
  wire [63:0] ctx1;
  context_memory #(.WIDTH(64)) cm1 (.clk(clk), .ccnt(ccnt), .wr_en(1'b0), .wr_addr(8'd0), .wr_data(64'd0), .context_word(ctx1));
  pe1 u_pe1 (.clk(clk), .rst(rst),
    .in0(rf_out[0]), .in1(rf_out[2]), .in2(rf_out[3]), 
    .livein({32{1'b0}}), .livein_valid(1'b0), .livein_addr('d0), .pred(out_pe),
    .context_word(ctx1),
    .rf_out(rf_out[1]), .liveout(), .status(status[1]));
  wire [63:0] ctx2;
  context_memory #(.WIDTH(64)) cm2 (.clk(clk), .ccnt(ccnt), .wr_en(1'b0), .wr_addr(8'd0), .wr_data(64'd0), .context_word(ctx2));
  pe2 u_pe2 (.clk(clk), .rst(rst),
    .in0(rf_out[1]), .in1(rf_out[3]), 
    .livein({32{1'b0}}), .livein_valid(1'b0), .livein_addr('d0), .pred(out_pe),
    .context_word(ctx2), .dma_addr(), .dma_wdata(), .dma_req(), .dma_we(), .dma_rdata({32{1'b0}}), .dma_ack(1'b0),
    .rf_out(rf_out[2]), .liveout(), .status(status[2]));
  wire [63:0] ctx3;
  context_memory #(.WIDTH(64)) cm3 (.clk(clk), .ccnt(ccnt), .wr_en(1'b0), .wr_addr(8'd0), .wr_data(64'd0), .context_word(ctx3));
  pe3 u_pe3 (.clk(clk), .rst(rst),
    .in0(rf_out[2]), .in1(rf_out[4]), .in2(rf_out[1]), 
    .livein({32{1'b0}}), .livein_valid(1'b0), .livein_addr('d0), .pred(out_pe),
    .context_word(ctx3),
    .rf_out(rf_out[3]), .liveout(), .status(status[3]));
  wire [63:0] ctx4;
  context_memory #(.WIDTH(64)) cm4 (.clk(clk), .ccnt(ccnt), .wr_en(1'b0), .wr_addr(8'd0), .wr_data(64'd0), .context_word(ctx4));
  pe4 u_pe4 (.clk(clk), .rst(rst),
    .in0(rf_out[3]), 
    .livein({32{1'b0}}), .livein_valid(1'b0), .livein_addr('d0), .pred(out_pe),
    .context_word(ctx4),
    .rf_out(rf_out[4]), .liveout(), .status(status[4]));
  wire [63:0] ctx_cbox;
  context_memory #(.WIDTH(64)) cm_cbox (.clk(clk), .ccnt(ccnt), .wr_en(1'b0), .wr_addr('d0), .wr_data(64'd0), .context_word(ctx_cbox));
  reg status_mux;
  always @(*) begin
    case (ctx_cbox[4:2])
      3'd0: status_mux = status[0];
      3'd1: status_mux = status[1];
      3'd2: status_mux = status[2];
      3'd3: status_mux = status[3];
      3'd4: status_mux = status[4];
      default: status_mux = 1'b0;
    endcase
  end
  cbox u_cbox (.clk(clk), .status(status_mux), .status_valid(ctx_cbox[0]),
    .in_a_stored(ctx_cbox[1]), .addr_a('d0), .inv_a(1'b0), .use_b(1'b0), .addr_b('d0), .inv_b(1'b0),
    .logic_op(2'd0), .wr_en(ctx_cbox[0]), .addr_wr('d0), .addr_pe('d0), .inv_pe(1'b0), .addr_ctrl('d0), .inv_ctrl(1'b0),
    .out_pe(out_pe), .out_ctrl(out_ctrl));
  wire [63:0] ctx_ccu;
  context_memory #(.WIDTH(64)) cm_ccu (.clk(clk), .ccnt(ccnt), .wr_en(1'b0), .wr_addr('d0), .wr_data(64'd0), .context_word(ctx_ccu));
  ccu u_ccu (.clk(clk), .rst(rst), .run(run), .start_ccnt(start_ccnt),
    .branch_present(ctx_ccu[0]), .branch_conditional(ctx_ccu[1]), .branch_sel(out_ctrl),
    .branch_target(ctx_ccu[2+:8]), .last_context({8{1'b1}}), .ccnt(ccnt), .done(done));
endmodule
