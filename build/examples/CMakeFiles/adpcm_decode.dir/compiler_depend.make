# Empty compiler generated dependencies file for adpcm_decode.
# This may be replaced when dependencies are built.
