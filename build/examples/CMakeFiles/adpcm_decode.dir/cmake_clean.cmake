file(REMOVE_RECURSE
  "CMakeFiles/adpcm_decode.dir/adpcm_decode.cpp.o"
  "CMakeFiles/adpcm_decode.dir/adpcm_decode.cpp.o.d"
  "adpcm_decode"
  "adpcm_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adpcm_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
