file(REMOVE_RECURSE
  "CMakeFiles/control_flow_tour.dir/control_flow_tour.cpp.o"
  "CMakeFiles/control_flow_tour.dir/control_flow_tour.cpp.o.d"
  "control_flow_tour"
  "control_flow_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_flow_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
