# Empty compiler generated dependencies file for control_flow_tour.
# This may be replaced when dependencies are built.
