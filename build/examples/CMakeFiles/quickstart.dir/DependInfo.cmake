
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/cgra_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cgra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ctx/CMakeFiles/cgra_ctx.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cgra_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/kir/CMakeFiles/cgra_kir.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/cgra_host.dir/DependInfo.cmake"
  "/root/repo/build/src/cdfg/CMakeFiles/cgra_cdfg.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/cgra_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/cgra_json.dir/DependInfo.cmake"
  "/root/repo/build/src/vgen/CMakeFiles/cgra_vgen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
