file(REMOVE_RECURSE
  "CMakeFiles/accelerated_app.dir/accelerated_app.cpp.o"
  "CMakeFiles/accelerated_app.dir/accelerated_app.cpp.o.d"
  "accelerated_app"
  "accelerated_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerated_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
