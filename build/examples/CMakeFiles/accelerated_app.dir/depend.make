# Empty dependencies file for accelerated_app.
# This may be replaced when dependencies are built.
