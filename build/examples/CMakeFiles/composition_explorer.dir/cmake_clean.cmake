file(REMOVE_RECURSE
  "CMakeFiles/composition_explorer.dir/composition_explorer.cpp.o"
  "CMakeFiles/composition_explorer.dir/composition_explorer.cpp.o.d"
  "composition_explorer"
  "composition_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composition_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
