# Empty compiler generated dependencies file for composition_explorer.
# This may be replaced when dependencies are built.
