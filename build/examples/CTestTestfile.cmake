# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adpcm_decode "/root/repo/build/examples/adpcm_decode")
set_tests_properties(example_adpcm_decode PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_composition_explorer "/root/repo/build/examples/composition_explorer")
set_tests_properties(example_composition_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_control_flow_tour "/root/repo/build/examples/control_flow_tour")
set_tests_properties(example_control_flow_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_accelerated_app "/root/repo/build/examples/accelerated_app")
set_tests_properties(example_accelerated_app PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
