file(REMOVE_RECURSE
  "CMakeFiles/cgra_sim.dir/accelerated_host.cpp.o"
  "CMakeFiles/cgra_sim.dir/accelerated_host.cpp.o.d"
  "CMakeFiles/cgra_sim.dir/simulator.cpp.o"
  "CMakeFiles/cgra_sim.dir/simulator.cpp.o.d"
  "libcgra_sim.a"
  "libcgra_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgra_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
