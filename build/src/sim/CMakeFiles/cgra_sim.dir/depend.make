# Empty dependencies file for cgra_sim.
# This may be replaced when dependencies are built.
