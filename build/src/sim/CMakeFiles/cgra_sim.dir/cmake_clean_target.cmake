file(REMOVE_RECURSE
  "libcgra_sim.a"
)
