
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kir/interp.cpp" "src/kir/CMakeFiles/cgra_kir.dir/interp.cpp.o" "gcc" "src/kir/CMakeFiles/cgra_kir.dir/interp.cpp.o.d"
  "/root/repo/src/kir/kir.cpp" "src/kir/CMakeFiles/cgra_kir.dir/kir.cpp.o" "gcc" "src/kir/CMakeFiles/cgra_kir.dir/kir.cpp.o.d"
  "/root/repo/src/kir/lower_bytecode.cpp" "src/kir/CMakeFiles/cgra_kir.dir/lower_bytecode.cpp.o" "gcc" "src/kir/CMakeFiles/cgra_kir.dir/lower_bytecode.cpp.o.d"
  "/root/repo/src/kir/lower_cdfg.cpp" "src/kir/CMakeFiles/cgra_kir.dir/lower_cdfg.cpp.o" "gcc" "src/kir/CMakeFiles/cgra_kir.dir/lower_cdfg.cpp.o.d"
  "/root/repo/src/kir/parser.cpp" "src/kir/CMakeFiles/cgra_kir.dir/parser.cpp.o" "gcc" "src/kir/CMakeFiles/cgra_kir.dir/parser.cpp.o.d"
  "/root/repo/src/kir/passes.cpp" "src/kir/CMakeFiles/cgra_kir.dir/passes.cpp.o" "gcc" "src/kir/CMakeFiles/cgra_kir.dir/passes.cpp.o.d"
  "/root/repo/src/kir/random_kernel.cpp" "src/kir/CMakeFiles/cgra_kir.dir/random_kernel.cpp.o" "gcc" "src/kir/CMakeFiles/cgra_kir.dir/random_kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cdfg/CMakeFiles/cgra_cdfg.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/cgra_host.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/cgra_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/cgra_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
