file(REMOVE_RECURSE
  "libcgra_kir.a"
)
