file(REMOVE_RECURSE
  "CMakeFiles/cgra_kir.dir/interp.cpp.o"
  "CMakeFiles/cgra_kir.dir/interp.cpp.o.d"
  "CMakeFiles/cgra_kir.dir/kir.cpp.o"
  "CMakeFiles/cgra_kir.dir/kir.cpp.o.d"
  "CMakeFiles/cgra_kir.dir/lower_bytecode.cpp.o"
  "CMakeFiles/cgra_kir.dir/lower_bytecode.cpp.o.d"
  "CMakeFiles/cgra_kir.dir/lower_cdfg.cpp.o"
  "CMakeFiles/cgra_kir.dir/lower_cdfg.cpp.o.d"
  "CMakeFiles/cgra_kir.dir/parser.cpp.o"
  "CMakeFiles/cgra_kir.dir/parser.cpp.o.d"
  "CMakeFiles/cgra_kir.dir/passes.cpp.o"
  "CMakeFiles/cgra_kir.dir/passes.cpp.o.d"
  "CMakeFiles/cgra_kir.dir/random_kernel.cpp.o"
  "CMakeFiles/cgra_kir.dir/random_kernel.cpp.o.d"
  "libcgra_kir.a"
  "libcgra_kir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgra_kir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
