# Empty compiler generated dependencies file for cgra_kir.
# This may be replaced when dependencies are built.
