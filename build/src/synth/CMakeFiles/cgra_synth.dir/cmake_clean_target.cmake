file(REMOVE_RECURSE
  "libcgra_synth.a"
)
