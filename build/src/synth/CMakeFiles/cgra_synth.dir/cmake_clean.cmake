file(REMOVE_RECURSE
  "CMakeFiles/cgra_synth.dir/synthesis.cpp.o"
  "CMakeFiles/cgra_synth.dir/synthesis.cpp.o.d"
  "libcgra_synth.a"
  "libcgra_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgra_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
