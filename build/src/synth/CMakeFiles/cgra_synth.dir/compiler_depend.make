# Empty compiler generated dependencies file for cgra_synth.
# This may be replaced when dependencies are built.
