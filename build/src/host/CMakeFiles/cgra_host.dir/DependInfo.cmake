
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/bytecode.cpp" "src/host/CMakeFiles/cgra_host.dir/bytecode.cpp.o" "gcc" "src/host/CMakeFiles/cgra_host.dir/bytecode.cpp.o.d"
  "/root/repo/src/host/memory.cpp" "src/host/CMakeFiles/cgra_host.dir/memory.cpp.o" "gcc" "src/host/CMakeFiles/cgra_host.dir/memory.cpp.o.d"
  "/root/repo/src/host/profiler.cpp" "src/host/CMakeFiles/cgra_host.dir/profiler.cpp.o" "gcc" "src/host/CMakeFiles/cgra_host.dir/profiler.cpp.o.d"
  "/root/repo/src/host/token_machine.cpp" "src/host/CMakeFiles/cgra_host.dir/token_machine.cpp.o" "gcc" "src/host/CMakeFiles/cgra_host.dir/token_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/cgra_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/cgra_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
