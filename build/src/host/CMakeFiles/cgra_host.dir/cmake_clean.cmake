file(REMOVE_RECURSE
  "CMakeFiles/cgra_host.dir/bytecode.cpp.o"
  "CMakeFiles/cgra_host.dir/bytecode.cpp.o.d"
  "CMakeFiles/cgra_host.dir/memory.cpp.o"
  "CMakeFiles/cgra_host.dir/memory.cpp.o.d"
  "CMakeFiles/cgra_host.dir/profiler.cpp.o"
  "CMakeFiles/cgra_host.dir/profiler.cpp.o.d"
  "CMakeFiles/cgra_host.dir/token_machine.cpp.o"
  "CMakeFiles/cgra_host.dir/token_machine.cpp.o.d"
  "libcgra_host.a"
  "libcgra_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgra_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
