file(REMOVE_RECURSE
  "libcgra_host.a"
)
