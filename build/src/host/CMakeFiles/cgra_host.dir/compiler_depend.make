# Empty compiler generated dependencies file for cgra_host.
# This may be replaced when dependencies are built.
