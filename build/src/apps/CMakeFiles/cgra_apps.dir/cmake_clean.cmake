file(REMOVE_RECURSE
  "CMakeFiles/cgra_apps.dir/kernels.cpp.o"
  "CMakeFiles/cgra_apps.dir/kernels.cpp.o.d"
  "libcgra_apps.a"
  "libcgra_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgra_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
