# Empty compiler generated dependencies file for cgra_apps.
# This may be replaced when dependencies are built.
