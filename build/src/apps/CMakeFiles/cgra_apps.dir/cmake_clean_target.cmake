file(REMOVE_RECURSE
  "libcgra_apps.a"
)
