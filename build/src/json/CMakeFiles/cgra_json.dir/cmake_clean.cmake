file(REMOVE_RECURSE
  "CMakeFiles/cgra_json.dir/json.cpp.o"
  "CMakeFiles/cgra_json.dir/json.cpp.o.d"
  "libcgra_json.a"
  "libcgra_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgra_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
