file(REMOVE_RECURSE
  "libcgra_json.a"
)
