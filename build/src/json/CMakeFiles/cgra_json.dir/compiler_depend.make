# Empty compiler generated dependencies file for cgra_json.
# This may be replaced when dependencies are built.
