file(REMOVE_RECURSE
  "CMakeFiles/cgra_sched.dir/analysis.cpp.o"
  "CMakeFiles/cgra_sched.dir/analysis.cpp.o.d"
  "CMakeFiles/cgra_sched.dir/schedule.cpp.o"
  "CMakeFiles/cgra_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/cgra_sched.dir/scheduler.cpp.o"
  "CMakeFiles/cgra_sched.dir/scheduler.cpp.o.d"
  "CMakeFiles/cgra_sched.dir/validate.cpp.o"
  "CMakeFiles/cgra_sched.dir/validate.cpp.o.d"
  "libcgra_sched.a"
  "libcgra_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgra_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
