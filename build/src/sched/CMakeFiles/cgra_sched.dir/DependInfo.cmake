
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/analysis.cpp" "src/sched/CMakeFiles/cgra_sched.dir/analysis.cpp.o" "gcc" "src/sched/CMakeFiles/cgra_sched.dir/analysis.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/cgra_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/cgra_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/cgra_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/cgra_sched.dir/scheduler.cpp.o.d"
  "/root/repo/src/sched/validate.cpp" "src/sched/CMakeFiles/cgra_sched.dir/validate.cpp.o" "gcc" "src/sched/CMakeFiles/cgra_sched.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cdfg/CMakeFiles/cgra_cdfg.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/cgra_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/cgra_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
