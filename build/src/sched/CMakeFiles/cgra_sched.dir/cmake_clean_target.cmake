file(REMOVE_RECURSE
  "libcgra_sched.a"
)
