# Empty dependencies file for cgra_sched.
# This may be replaced when dependencies are built.
