file(REMOVE_RECURSE
  "libcgra_vgen.a"
)
