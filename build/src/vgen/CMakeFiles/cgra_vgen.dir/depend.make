# Empty dependencies file for cgra_vgen.
# This may be replaced when dependencies are built.
