file(REMOVE_RECURSE
  "CMakeFiles/cgra_vgen.dir/verilog.cpp.o"
  "CMakeFiles/cgra_vgen.dir/verilog.cpp.o.d"
  "libcgra_vgen.a"
  "libcgra_vgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgra_vgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
