file(REMOVE_RECURSE
  "CMakeFiles/cgra_cdfg.dir/cdfg.cpp.o"
  "CMakeFiles/cgra_cdfg.dir/cdfg.cpp.o.d"
  "libcgra_cdfg.a"
  "libcgra_cdfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgra_cdfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
