# Empty compiler generated dependencies file for cgra_cdfg.
# This may be replaced when dependencies are built.
