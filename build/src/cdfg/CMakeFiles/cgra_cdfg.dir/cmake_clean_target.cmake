file(REMOVE_RECURSE
  "libcgra_cdfg.a"
)
