
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/composition.cpp" "src/arch/CMakeFiles/cgra_arch.dir/composition.cpp.o" "gcc" "src/arch/CMakeFiles/cgra_arch.dir/composition.cpp.o.d"
  "/root/repo/src/arch/factory.cpp" "src/arch/CMakeFiles/cgra_arch.dir/factory.cpp.o" "gcc" "src/arch/CMakeFiles/cgra_arch.dir/factory.cpp.o.d"
  "/root/repo/src/arch/interconnect.cpp" "src/arch/CMakeFiles/cgra_arch.dir/interconnect.cpp.o" "gcc" "src/arch/CMakeFiles/cgra_arch.dir/interconnect.cpp.o.d"
  "/root/repo/src/arch/operation.cpp" "src/arch/CMakeFiles/cgra_arch.dir/operation.cpp.o" "gcc" "src/arch/CMakeFiles/cgra_arch.dir/operation.cpp.o.d"
  "/root/repo/src/arch/pe.cpp" "src/arch/CMakeFiles/cgra_arch.dir/pe.cpp.o" "gcc" "src/arch/CMakeFiles/cgra_arch.dir/pe.cpp.o.d"
  "/root/repo/src/arch/resource_model.cpp" "src/arch/CMakeFiles/cgra_arch.dir/resource_model.cpp.o" "gcc" "src/arch/CMakeFiles/cgra_arch.dir/resource_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/json/CMakeFiles/cgra_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
