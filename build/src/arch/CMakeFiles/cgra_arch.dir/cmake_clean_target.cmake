file(REMOVE_RECURSE
  "libcgra_arch.a"
)
