file(REMOVE_RECURSE
  "CMakeFiles/cgra_arch.dir/composition.cpp.o"
  "CMakeFiles/cgra_arch.dir/composition.cpp.o.d"
  "CMakeFiles/cgra_arch.dir/factory.cpp.o"
  "CMakeFiles/cgra_arch.dir/factory.cpp.o.d"
  "CMakeFiles/cgra_arch.dir/interconnect.cpp.o"
  "CMakeFiles/cgra_arch.dir/interconnect.cpp.o.d"
  "CMakeFiles/cgra_arch.dir/operation.cpp.o"
  "CMakeFiles/cgra_arch.dir/operation.cpp.o.d"
  "CMakeFiles/cgra_arch.dir/pe.cpp.o"
  "CMakeFiles/cgra_arch.dir/pe.cpp.o.d"
  "CMakeFiles/cgra_arch.dir/resource_model.cpp.o"
  "CMakeFiles/cgra_arch.dir/resource_model.cpp.o.d"
  "libcgra_arch.a"
  "libcgra_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgra_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
