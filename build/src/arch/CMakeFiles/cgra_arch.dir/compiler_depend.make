# Empty compiler generated dependencies file for cgra_arch.
# This may be replaced when dependencies are built.
