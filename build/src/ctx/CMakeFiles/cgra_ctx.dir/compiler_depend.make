# Empty compiler generated dependencies file for cgra_ctx.
# This may be replaced when dependencies are built.
