file(REMOVE_RECURSE
  "CMakeFiles/cgra_ctx.dir/contexts.cpp.o"
  "CMakeFiles/cgra_ctx.dir/contexts.cpp.o.d"
  "CMakeFiles/cgra_ctx.dir/multi.cpp.o"
  "CMakeFiles/cgra_ctx.dir/multi.cpp.o.d"
  "CMakeFiles/cgra_ctx.dir/regalloc.cpp.o"
  "CMakeFiles/cgra_ctx.dir/regalloc.cpp.o.d"
  "CMakeFiles/cgra_ctx.dir/serialize.cpp.o"
  "CMakeFiles/cgra_ctx.dir/serialize.cpp.o.d"
  "libcgra_ctx.a"
  "libcgra_ctx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgra_ctx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
