file(REMOVE_RECURSE
  "libcgra_ctx.a"
)
