
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctx/contexts.cpp" "src/ctx/CMakeFiles/cgra_ctx.dir/contexts.cpp.o" "gcc" "src/ctx/CMakeFiles/cgra_ctx.dir/contexts.cpp.o.d"
  "/root/repo/src/ctx/multi.cpp" "src/ctx/CMakeFiles/cgra_ctx.dir/multi.cpp.o" "gcc" "src/ctx/CMakeFiles/cgra_ctx.dir/multi.cpp.o.d"
  "/root/repo/src/ctx/regalloc.cpp" "src/ctx/CMakeFiles/cgra_ctx.dir/regalloc.cpp.o" "gcc" "src/ctx/CMakeFiles/cgra_ctx.dir/regalloc.cpp.o.d"
  "/root/repo/src/ctx/serialize.cpp" "src/ctx/CMakeFiles/cgra_ctx.dir/serialize.cpp.o" "gcc" "src/ctx/CMakeFiles/cgra_ctx.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/cgra_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/cdfg/CMakeFiles/cgra_cdfg.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/cgra_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/cgra_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
