# Empty dependencies file for test_synthesis.
# This may be replaced when dependencies are built.
