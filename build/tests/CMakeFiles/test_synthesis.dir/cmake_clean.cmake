file(REMOVE_RECURSE
  "CMakeFiles/test_synthesis.dir/test_synthesis.cpp.o"
  "CMakeFiles/test_synthesis.dir/test_synthesis.cpp.o.d"
  "test_synthesis"
  "test_synthesis.pdb"
  "test_synthesis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
