file(REMOVE_RECURSE
  "CMakeFiles/test_cdfg.dir/test_cdfg.cpp.o"
  "CMakeFiles/test_cdfg.dir/test_cdfg.cpp.o.d"
  "test_cdfg"
  "test_cdfg.pdb"
  "test_cdfg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cdfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
