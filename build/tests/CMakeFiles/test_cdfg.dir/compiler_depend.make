# Empty compiler generated dependencies file for test_cdfg.
# This may be replaced when dependencies are built.
