file(REMOVE_RECURSE
  "CMakeFiles/test_kir.dir/test_kir.cpp.o"
  "CMakeFiles/test_kir.dir/test_kir.cpp.o.d"
  "test_kir"
  "test_kir.pdb"
  "test_kir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
