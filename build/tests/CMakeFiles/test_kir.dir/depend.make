# Empty dependencies file for test_kir.
# This may be replaced when dependencies are built.
