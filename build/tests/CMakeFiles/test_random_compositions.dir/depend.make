# Empty dependencies file for test_random_compositions.
# This may be replaced when dependencies are built.
