file(REMOVE_RECURSE
  "CMakeFiles/test_random_compositions.dir/test_random_compositions.cpp.o"
  "CMakeFiles/test_random_compositions.dir/test_random_compositions.cpp.o.d"
  "test_random_compositions"
  "test_random_compositions.pdb"
  "test_random_compositions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_compositions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
