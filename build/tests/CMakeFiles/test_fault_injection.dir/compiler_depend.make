# Empty compiler generated dependencies file for test_fault_injection.
# This may be replaced when dependencies are built.
