file(REMOVE_RECURSE
  "CMakeFiles/test_fault_injection.dir/test_fault_injection.cpp.o"
  "CMakeFiles/test_fault_injection.dir/test_fault_injection.cpp.o.d"
  "test_fault_injection"
  "test_fault_injection.pdb"
  "test_fault_injection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
