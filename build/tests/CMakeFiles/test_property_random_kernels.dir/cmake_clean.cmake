file(REMOVE_RECURSE
  "CMakeFiles/test_property_random_kernels.dir/test_property_random_kernels.cpp.o"
  "CMakeFiles/test_property_random_kernels.dir/test_property_random_kernels.cpp.o.d"
  "test_property_random_kernels"
  "test_property_random_kernels.pdb"
  "test_property_random_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_random_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
