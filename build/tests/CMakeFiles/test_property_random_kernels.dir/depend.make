# Empty dependencies file for test_property_random_kernels.
# This may be replaced when dependencies are built.
