# Empty compiler generated dependencies file for test_host.
# This may be replaced when dependencies are built.
