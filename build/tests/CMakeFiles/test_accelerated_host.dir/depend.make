# Empty dependencies file for test_accelerated_host.
# This may be replaced when dependencies are built.
