file(REMOVE_RECURSE
  "CMakeFiles/test_accelerated_host.dir/test_accelerated_host.cpp.o"
  "CMakeFiles/test_accelerated_host.dir/test_accelerated_host.cpp.o.d"
  "test_accelerated_host"
  "test_accelerated_host.pdb"
  "test_accelerated_host[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accelerated_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
