file(REMOVE_RECURSE
  "CMakeFiles/test_vgen.dir/test_vgen.cpp.o"
  "CMakeFiles/test_vgen.dir/test_vgen.cpp.o.d"
  "test_vgen"
  "test_vgen.pdb"
  "test_vgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
