# Empty dependencies file for test_vgen.
# This may be replaced when dependencies are built.
