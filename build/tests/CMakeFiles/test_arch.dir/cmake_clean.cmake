file(REMOVE_RECURSE
  "CMakeFiles/test_arch.dir/test_arch.cpp.o"
  "CMakeFiles/test_arch.dir/test_arch.cpp.o.d"
  "test_arch"
  "test_arch.pdb"
  "test_arch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
