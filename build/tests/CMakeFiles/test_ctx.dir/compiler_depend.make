# Empty compiler generated dependencies file for test_ctx.
# This may be replaced when dependencies are built.
