file(REMOVE_RECURSE
  "CMakeFiles/test_ctx.dir/test_ctx.cpp.o"
  "CMakeFiles/test_ctx.dir/test_ctx.cpp.o.d"
  "test_ctx"
  "test_ctx.pdb"
  "test_ctx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ctx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
