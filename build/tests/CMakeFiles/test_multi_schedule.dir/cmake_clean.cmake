file(REMOVE_RECURSE
  "CMakeFiles/test_multi_schedule.dir/test_multi_schedule.cpp.o"
  "CMakeFiles/test_multi_schedule.dir/test_multi_schedule.cpp.o.d"
  "test_multi_schedule"
  "test_multi_schedule.pdb"
  "test_multi_schedule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
