# Empty compiler generated dependencies file for test_multi_schedule.
# This may be replaced when dependencies are built.
