# Empty dependencies file for test_composition_sweep.
# This may be replaced when dependencies are built.
