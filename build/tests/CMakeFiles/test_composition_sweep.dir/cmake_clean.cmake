file(REMOVE_RECURSE
  "CMakeFiles/test_composition_sweep.dir/test_composition_sweep.cpp.o"
  "CMakeFiles/test_composition_sweep.dir/test_composition_sweep.cpp.o.d"
  "test_composition_sweep"
  "test_composition_sweep.pdb"
  "test_composition_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_composition_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
