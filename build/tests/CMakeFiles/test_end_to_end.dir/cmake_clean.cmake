file(REMOVE_RECURSE
  "CMakeFiles/test_end_to_end.dir/test_end_to_end.cpp.o"
  "CMakeFiles/test_end_to_end.dir/test_end_to_end.cpp.o.d"
  "test_end_to_end"
  "test_end_to_end.pdb"
  "test_end_to_end[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
