# Empty dependencies file for test_end_to_end.
# This may be replaced when dependencies are built.
