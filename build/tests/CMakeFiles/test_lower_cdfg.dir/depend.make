# Empty dependencies file for test_lower_cdfg.
# This may be replaced when dependencies are built.
