file(REMOVE_RECURSE
  "CMakeFiles/test_lower_cdfg.dir/test_lower_cdfg.cpp.o"
  "CMakeFiles/test_lower_cdfg.dir/test_lower_cdfg.cpp.o.d"
  "test_lower_cdfg"
  "test_lower_cdfg.pdb"
  "test_lower_cdfg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lower_cdfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
