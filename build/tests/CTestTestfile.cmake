# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_end_to_end[1]_include.cmake")
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_cdfg[1]_include.cmake")
include("/root/repo/build/tests/test_kir[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_ctx[1]_include.cmake")
include("/root/repo/build/tests/test_host[1]_include.cmake")
include("/root/repo/build/tests/test_vgen[1]_include.cmake")
include("/root/repo/build/tests/test_property_random_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_composition_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_accelerated_host[1]_include.cmake")
include("/root/repo/build/tests/test_synthesis[1]_include.cmake")
include("/root/repo/build/tests/test_lower_cdfg[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_fault_injection[1]_include.cmake")
include("/root/repo/build/tests/test_multi_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_random_compositions[1]_include.cmake")
