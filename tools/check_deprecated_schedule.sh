#!/usr/bin/env bash
# Lint: the deprecated Scheduler::schedule(const Cdfg&) shims were removed
# with the pass-pipeline refactor. This check is now a hard failure on two
# fronts: (1) no call site anywhere in the tree may use the legacy
# Cdfg-taking spelling — every caller goes through the ScheduleRequest /
# ScheduleReport API (see DESIGN.md §8); (2) the shims themselves (a
# [[deprecated]] schedule overload or the SchedulingResult bundle) must not
# reappear in the scheduler sources.
#
# Heuristic for (1): a `.schedule(...)` call is considered migrated when the
# call (or its argument) mentions ScheduleRequest / request / req. Member
# accesses like `result.schedule` carry no parenthesis and are ignored.
#
# Usage: tools/check_deprecated_schedule.sh [repo-root]
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 2

offenders=$(grep -rn --include='*.cpp' --include='*.hpp' '\.schedule(' \
    src tests tools examples bench 2>/dev/null |
  grep -viE 'schedulerequest|request|req')

if [ -n "$offenders" ]; then
  echo "error: deprecated Scheduler::schedule(const Cdfg&) call sites found."
  echo "Build a ScheduleRequest and call schedule(const ScheduleRequest&)"
  echo "instead (DESIGN.md §8):"
  echo
  echo "$offenders"
  exit 1
fi

echo "ok: all Scheduler::schedule call sites use the ScheduleRequest API"

# Hard failure: the removed legacy surface must stay removed. Any
# [[deprecated]] marker or SchedulingResult mention in the scheduler
# sources means the shims are creeping back in.
shim_offenders=$(grep -rnE '\[\[deprecated\]\]|SchedulingResult' \
    src/sched/scheduler.hpp src/sched/scheduler.cpp src/sched/passes \
    2>/dev/null)

if [ -n "$shim_offenders" ]; then
  echo "error: legacy scheduler shim surface detected. The deprecated"
  echo "Cdfg-taking schedule() overloads and SchedulingResult were removed;"
  echo "do not reintroduce them:"
  echo
  echo "$shim_offenders"
  exit 1
fi

echo "ok: no deprecated schedule shims in the scheduler sources"

# Lint 2: no raw SimCounters field math in benches or tools. Derived
# quantities (utilization, squash rate, cycles/op, totals) have accessors on
# sim::Report (src/sim/report.hpp); hand-rolled arithmetic over the raw
# fields drifts from the canonical definitions. toJson() is the one allowed
# member (serialization, not math). tools/cgra_tool.cpp is the designated
# presentation layer that renders the raw per-PE table and is exempt.
fields='perPE|squashedOps|byClass|linkTransfers|contextExec|cboxSlotWrites'
fields="$fields|cboxCombines|cboxStatusReads|nopCycles|dmaSuppressed"
fields="$fields|liveInTransferCycles|liveOutTransferCycles"

counter_offenders=$(grep -rnE --include='*.cpp' --include='*.hpp' \
    "(counters(->|\.)|\b)($fields)\b" tools bench 2>/dev/null |
  grep -v '^tools/cgra_tool\.cpp:' |
  grep -v '^tools/check_deprecated_schedule\.sh:' |
  grep -v 'toJson()')

if [ -n "$counter_offenders" ]; then
  echo "error: raw SimCounters field access in tools/bench code."
  echo "Use the sim::Report accessors (achievedUtilization, squashRate,"
  echo "cyclesPerOp, totalSquashed, totalLinkTransfers, ...) or toJson()"
  echo "instead of re-deriving metrics from raw counter fields:"
  echo
  echo "$counter_offenders"
  exit 1
fi

echo "ok: no raw SimCounters field math outside the Report accessors"
exit 0
