#!/usr/bin/env bash
# Lint: no new call sites of the deprecated Scheduler::schedule(const Cdfg&)
# overloads. Every in-tree caller must go through the ScheduleRequest /
# ScheduleReport API (see DESIGN.md §8); the deprecated shims live only in
# src/sched/scheduler.cpp, which is the one file allowed to reference them.
#
# Heuristic: a `.schedule(...)` call is considered migrated when the call (or
# its argument) mentions ScheduleRequest / request / req. Member accesses
# like `result.schedule` carry no parenthesis and are ignored.
#
# Usage: tools/check_deprecated_schedule.sh [repo-root]
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 2

offenders=$(grep -rn --include='*.cpp' --include='*.hpp' '\.schedule(' \
    src tests tools examples bench 2>/dev/null |
  grep -v '^src/sched/scheduler\.cpp:' |
  grep -viE 'schedulerequest|request|req')

if [ -n "$offenders" ]; then
  echo "error: deprecated Scheduler::schedule(const Cdfg&) call sites found."
  echo "Build a ScheduleRequest and call schedule(const ScheduleRequest&)"
  echo "instead (DESIGN.md §8):"
  echo
  echo "$offenders"
  exit 1
fi

echo "ok: all Scheduler::schedule call sites use the ScheduleRequest API"
exit 0
