#!/usr/bin/env bash
# Regenerates every checked-in golden from the current scheduler output:
#   tests/golden/sweep_stable_seed.json        (--stable sweep metrics)
#   tests/golden/explore_stable_seed.json      (--stable explore front)
#   tests/golden/explain_adpcm_mesh9.txt       (decision transcript)
#   tests/golden/explain_gcd_irregularD.txt    (decision transcript)
#   tests/golden/random_kernel_fingerprints.txt (60-seed schedule corpus)
#   tests/golden/kir_vm_accumulate.txt         (per-stage frontend IR dump)
#   tests/golden/kernel_suite_fingerprints.txt (examples/kernels schedules)
#
# Run ONLY when a commit intentionally changes scheduler behavior, and
# regenerate in that same commit (note it in CHANGES.md). Usage:
#   tools/regen_goldens.sh [build-dir]   # default: build
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
tool="$build/tools/cgra-tool"
pipeline_test="$build/tests/test_pass_pipeline"
golden="$repo/tests/golden"

[ -x "$tool" ] || { echo "error: $tool not built" >&2; exit 1; }
[ -x "$pipeline_test" ] || { echo "error: $pipeline_test not built" >&2; exit 1; }

echo "== stable sweep metrics"
"$tool" sweep --comps mesh4,mesh9,mesh12 --kernels gcd,dotprod,fir \
  --threads 2 --stable --metrics "$golden/sweep_stable_seed.json" >/dev/null

echo "== stable explore front"
"$tool" explore --kernels dotprod,gcd --strategy genetic --seed 42 \
  --budget 12 --population 4 --threads 2 --stable \
  --out "$golden/explore_stable_seed.json" >/dev/null

echo "== explain transcripts"
"$tool" explain --comp mesh9 --kernel adpcm \
  > "$golden/explain_adpcm_mesh9.txt" 2>&1
"$tool" explain --comp D --kernel gcd \
  > "$golden/explain_gcd_irregularD.txt" 2>&1

echo "== random-kernel fingerprint corpus"
CGRA_REGEN_GOLDENS=1 "$pipeline_test" \
  --gtest_filter='PassPipeline.RandomKernelFingerprintsMatchGolden' \
  >/dev/null

echo "== frontend per-stage IR dump"
"$tool" kir --kernel-file "$repo/examples/kernels/vm_accumulate.kir" \
  > "$golden/kir_vm_accumulate.txt" 2>&1

echo "== kernel-suite fingerprints"
suite_test="$build/tests/test_kernel_suite"
[ -x "$suite_test" ] || { echo "error: $suite_test not built" >&2; exit 1; }
CGRA_REGEN_GOLDENS=1 "$suite_test" \
  --gtest_filter='KernelSuiteIndex.FingerprintsMatchGolden' >/dev/null

echo "regenerated goldens in $golden:"
git -C "$repo" status --short -- tests/golden
