#!/usr/bin/env python3
"""Validate and compare cgra-bench-v1 JSON reports.

Every bench binary emits BENCH_<name>.json (see bench/bench_common.hpp).
This tool has two modes:

  validate:  bench_compare.py --validate DIR
      Schema-check every BENCH_*.json under DIR. Exit 1 on any violation.

  compare:   bench_compare.py --baseline DIR --current DIR [--threshold 0.10]
      Compare deterministic metrics (lower-is-better) against a baseline.
      Exit 1 if any metric regressed by more than the threshold fraction.
      A metric the current run emits that has no baseline entry is a hard
      failure too: an ungated metric is a regression gate silently not
      running, which is exactly how stale baselines rot (re-seed the
      baseline file to fix). Wall-clock "timings" are machine-dependent
      and only warn. A missing baseline directory or missing baseline
      file is non-blocking (exit 0 with a warning) so the first CI run
      can seed the baseline.

      --gate-timing KEY (repeatable) promotes the named timing key from
      warn-only to gated, at its own generous --timing-threshold (default
      3.0, i.e. fail only past 4x the baseline): loose enough for shared
      CI runners, tight enough to catch an accidental O(n^2) on the
      scheduling hot path. BENCH_table4_walltime.json additionally carries
      the per-pass exclusive wall times (passAnalysisMs, passCandidateMs,
      passCostModelMs, passPlacementMs, passRoutingMs, passFusingMs,
      passCboxMs, passLoopMs, passFinalizeMs), so an individual scheduler
      pass can be gated on its own: e.g.
        --gate-timing sweepWallMs --gate-timing passRoutingMs

Uses only the Python standard library.
"""

import argparse
import glob
import json
import math
import os
import sys

SCHEMA = "cgra-bench-v1"
REQUIRED_FIELDS = ("schema", "name", "gitRev", "wallMs", "metrics", "timings")


def fail(msg):
    print("ERROR: " + msg)
    return 1


def warn(msg):
    print("WARNING: " + msg)


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool) \
        and math.isfinite(v)


def load_reports(directory):
    """Return {bench name: parsed json} for every BENCH_*.json in directory."""
    reports = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        with open(path, "r", encoding="utf-8") as f:
            reports[os.path.basename(path)] = json.load(f)
    return reports


def validate_report(fname, doc):
    """Return a list of schema violations (empty when valid)."""
    errors = []
    if not isinstance(doc, dict):
        return [fname + ": top level is not an object"]
    for field in REQUIRED_FIELDS:
        if field not in doc:
            errors.append(fname + ": missing required field '" + field + "'")
    if errors:
        return errors
    if doc["schema"] != SCHEMA:
        errors.append(fname + ": schema is '" + str(doc["schema"]) +
                      "', expected '" + SCHEMA + "'")
    if not isinstance(doc["name"], str) or not doc["name"]:
        errors.append(fname + ": 'name' must be a non-empty string")
    elif fname != "BENCH_" + doc["name"] + ".json":
        errors.append(fname + ": filename does not match name '" +
                      doc["name"] + "'")
    if not isinstance(doc["gitRev"], str) or not doc["gitRev"]:
        errors.append(fname + ": 'gitRev' must be a non-empty string")
    if not is_num(doc["wallMs"]) or doc["wallMs"] < 0:
        errors.append(fname + ": 'wallMs' must be a non-negative number")
    for section in ("metrics", "timings"):
        if not isinstance(doc[section], dict):
            errors.append(fname + ": '" + section + "' must be an object")
            continue
        for key, value in doc[section].items():
            if not is_num(value):
                errors.append(fname + ": " + section + "." + key +
                              " is not a finite number")
    if "info" in doc and not isinstance(doc["info"], dict):
        errors.append(fname + ": 'info' must be an object")
    if "counters" in doc and not isinstance(doc["counters"], dict):
        errors.append(fname + ": 'counters' must be an object")
    return errors


def cmd_validate(directory):
    reports = load_reports(directory)
    if not reports:
        return fail("no BENCH_*.json files found in " + directory)
    errors = []
    for fname, doc in reports.items():
        errors.extend(validate_report(fname, doc))
    for e in errors:
        print("ERROR: " + e)
    n_metrics = sum(len(d.get("metrics", {})) for d in reports.values())
    print("validated %d report(s), %d metric(s): %s" %
          (len(reports), n_metrics, "FAIL" if errors else "OK"))
    return 1 if errors else 0


def compare_section(fname, section, base, cur, threshold, lower_is_better):
    """Yield (is_regression, message) for each shared key."""
    for key in sorted(set(base) & set(cur)):
        b, c = base[key], cur[key]
        if not (is_num(b) and is_num(c)):
            continue
        if b <= 0:
            # Ratios are meaningless against a zero/negative baseline;
            # only flag an exact-zero baseline that became non-zero.
            if b == 0 and c != 0 and lower_is_better:
                yield True, "%s %s.%s: baseline 0, now %g" % (
                    fname, section, key, c)
            continue
        delta = (c - b) / b
        if delta > threshold:
            yield lower_is_better, "%s %s.%s: %g -> %g (+%.1f%%)" % (
                fname, section, key, b, c, 100.0 * delta)
        elif delta < -threshold:
            yield False, "%s %s.%s: %g -> %g (%.1f%% improvement)" % (
                fname, section, key, b, c, -100.0 * delta)


def cmd_compare(baseline_dir, current_dir, threshold, gated_timings,
                timing_threshold):
    if not os.path.isdir(baseline_dir):
        warn("baseline directory '" + baseline_dir +
             "' not found; nothing to compare (seed it from this run)")
        return 0
    current = load_reports(current_dir)
    if not current:
        return fail("no BENCH_*.json files found in " + current_dir)
    baseline = load_reports(baseline_dir)

    regressions = []
    compared = 0
    for fname, cur in sorted(current.items()):
        if fname not in baseline:
            warn("no baseline for " + fname + "; skipping")
            continue
        base = baseline[fname]
        compared += 1
        # Every metric the current run produces must be gated: a key absent
        # from the baseline would silently escape comparison forever, so it
        # fails hard until the baseline is re-seeded with it.
        for key in sorted(set(cur.get("metrics", {})) -
                          set(base.get("metrics", {}))):
            regressions.append(
                "%s metrics.%s: no baseline entry — metric is ungated; "
                "re-seed the baseline file with this run's value" %
                (fname, key))
        for key in sorted(gated_timings & (set(cur.get("timings", {})) -
                                           set(base.get("timings", {})))):
            regressions.append(
                "%s timings.%s: gated timing has no baseline entry — "
                "re-seed the baseline file" % (fname, key))
        for is_reg, msg in compare_section(
                fname, "metrics", base.get("metrics", {}),
                cur.get("metrics", {}), threshold, lower_is_better=True):
            if is_reg:
                regressions.append(msg)
            else:
                print("NOTE: " + msg)
        base_timings = base.get("timings", {})
        cur_timings = cur.get("timings", {})
        gated = {k: v for k, v in cur_timings.items() if k in gated_timings}
        free = {k: v for k, v in cur_timings.items() if k not in gated_timings}
        for is_reg, msg in compare_section(
                fname, "timings", base_timings, gated, timing_threshold,
                lower_is_better=True):
            if is_reg:
                regressions.append(msg + " [gated wall clock]")
            else:
                print("NOTE: " + msg)
        for _, msg in compare_section(
                fname, "timings", base_timings, free, threshold,
                lower_is_better=False):
            warn(msg + " [wall clock, not gated]")

    if compared == 0:
        warn("no benches had baselines; nothing gated")
        return 0
    for msg in regressions:
        print("REGRESSION: " + msg)
    print("compared %d report(s) at %.0f%% threshold: %s" %
          (compared, 100.0 * threshold,
           "FAIL (%d regression(s))" % len(regressions)
           if regressions else "OK"))
    return 1 if regressions else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--validate", metavar="DIR",
                        help="schema-check all BENCH_*.json in DIR")
    parser.add_argument("--baseline", metavar="DIR",
                        help="directory holding baseline BENCH_*.json")
    parser.add_argument("--current", metavar="DIR",
                        help="directory holding freshly produced BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="regression gate as a fraction (default 0.10)")
    parser.add_argument("--gate-timing", action="append", default=[],
                        metavar="KEY",
                        help="timing key to gate instead of warn "
                             "(repeatable)")
    parser.add_argument("--timing-threshold", type=float, default=3.0,
                        help="gate for --gate-timing keys as a fraction "
                             "(default 3.0 = fail past 4x the baseline)")
    args = parser.parse_args()

    if args.validate:
        return cmd_validate(args.validate)
    if args.baseline and args.current:
        return cmd_compare(args.baseline, args.current, args.threshold,
                           set(args.gate_timing), args.timing_threshold)
    parser.error("need --validate DIR, or --baseline DIR --current DIR")


if __name__ == "__main__":
    sys.exit(main())
