#!/usr/bin/env python3
"""Validate a `cgra-tool serve --access-log` JSONL file against a golden.

Usage: check_access_log.py ACCESS_LOG [GOLDEN]

With no GOLDEN (or GOLDEN of "-") only the invariant layer runs.

Two layers of checking:

  1. Invariants on the raw lines (DESIGN.md §13): every line is a
     one-object JSON document; the span breakdown is additive
     (admitUs + queueUs + serviceUs + writeUs == totalUs exactly); the
     service span contains its sub-spans (storeUs + scheduleUs +
     serializeUs <= serviceUs); a non-empty key is exactly the 12-char
     prefix of the artifact key.

  2. Format stability: after zeroing the volatile fields (every *Us
     duration, the connection id) and replacing the key prefix with a
     placeholder, the normalised lines must match the golden
     byte-for-byte. Renaming, adding, or dropping an access-log field
     fails this check until the golden is regenerated on purpose.

Uses only the Python standard library. Exit 0 on success, 1 with a
diagnostic on the first violation.
"""

import json
import sys

VOLATILE_SUFFIX = "Us"


def die(msg):
    print("check_access_log: " + msg, file=sys.stderr)
    sys.exit(1)


def normalize(line, lineno):
    try:
        doc = json.loads(line)
    except ValueError as e:
        die("line %d is not valid JSON: %s" % (lineno, e))
    if not isinstance(doc, dict):
        die("line %d is not a JSON object" % lineno)

    spans = {}
    for k in ("admitUs", "queueUs", "serviceUs", "writeUs", "totalUs",
              "storeUs", "scheduleUs", "serializeUs"):
        v = doc.get(k)
        if not isinstance(v, int) or v < 0:
            die("line %d: %s must be a non-negative integer, got %r"
                % (lineno, k, v))
        spans[k] = v
    accounted = (spans["admitUs"] + spans["queueUs"] + spans["serviceUs"]
                 + spans["writeUs"])
    if accounted != spans["totalUs"]:
        die("line %d: spans are not additive: admit+queue+service+write=%d"
            " != totalUs=%d" % (lineno, accounted, spans["totalUs"]))
    inner = spans["storeUs"] + spans["scheduleUs"] + spans["serializeUs"]
    if inner > spans["serviceUs"]:
        die("line %d: sub-spans exceed serviceUs: %d > %d"
            % (lineno, inner, spans["serviceUs"]))

    key = doc.get("key")
    if not isinstance(key, str):
        die("line %d: key must be a string" % lineno)
    if key and len(key) != 12:
        die("line %d: non-empty key must be the 12-char prefix, got %r"
            % (lineno, key))

    for k in list(doc):
        if k.endswith(VOLATILE_SUFFIX):
            doc[k] = 0
    doc["conn"] = 0
    if key:
        doc["key"] = "<key12>"
    return json.dumps(doc, sort_keys=True)


def main(argv):
    if len(argv) not in (2, 3):
        die("usage: check_access_log.py ACCESS_LOG [GOLDEN]")
    with open(argv[1], "r", encoding="utf-8") as f:
        got = [normalize(line, i + 1)
               for i, line in enumerate(f) if line.strip()]
    if len(argv) == 2 or argv[2] == "-":
        print("check_access_log: %d line(s) satisfy the span invariants"
              % len(got))
        return 0
    with open(argv[2], "r", encoding="utf-8") as f:
        want = [line.rstrip("\n") for line in f if line.strip()]
    if got != want:
        print("check_access_log: normalised log differs from golden",
              file=sys.stderr)
        for i in range(max(len(got), len(want))):
            g = got[i] if i < len(got) else "<missing>"
            w = want[i] if i < len(want) else "<missing>"
            if g != w:
                print("  line %d:\n    got:  %s\n    want: %s"
                      % (i + 1, g, w), file=sys.stderr)
        sys.exit(1)
    print("check_access_log: %d line(s) match the golden" % len(got))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
