// cgra-tool — command-line front end of the toolflow.
//
//   cgra-tool list                                  kernels & compositions
//   cgra-tool describe  --comp mesh9                composition report
//   cgra-tool kir       --kernel-file f.kir [--unroll 2] [--cse]
//                       [--switch-strategy bucket]  print the IR after
//                       every frontend-pipeline stage (inline,
//                       shortcircuit, switch-lower, exit-normalize, cse,
//                       unroll); exits non-zero if the result still
//                       contains irregular control flow
//   cgra-tool schedule  --comp D --kernel adpcm [--unroll 2]
//                       [--gantt] [--dump] [--contexts out.json]
//                       [--verilog out.v] [--dot out.dot]
//                       [--trace out.trace.json]
//   cgra-tool explain   --comp D --kernel adpcm [--max-contexts 4]
//                       print the scheduler's decision log — candidate
//                       picks, per-PE rejection reasons, copy/const
//                       insertion, C-Box allocation — for mappable and
//                       unmappable kernels alike
//   cgra-tool simulate  --comp mesh9 --kernel adpcm [--unroll 2]
//                       [--baseline] [--counters] [--json out.json]
//                       [--csv out.csv]            run & verify vs golden;
//                       --counters collects the hardware-counter model and
//                       prints achieved per-PE utilization + heatmap
//   cgra-tool stats     --comp mesh9 --kernel adpcm [--json r.json]
//                       [--csv r.csv]              static schedule-quality
//                       report (utilization, occupancy, slack, heatmap)
//                       without running the simulator
//   cgra-tool synthesize --kernels adpcm,fir,gcd [--area-weight 0.25]
//                       [--threads 4]
//   cgra-tool sweep     --comps mesh4,mesh9,A --kernels adpcm,gcd
//                       [--unroll 2] [--threads 4] [--metrics out.json]
//                       [--trace tracedir] [--cache cachedir] [--seed 42]
//                       schedule every (composition × kernel) pair on the
//                       parallel sweep engine; --metrics dumps the
//                       aggregated scheduler-metrics JSON report; --trace
//                       writes one Chrome trace-event file per job;
//                       --cache serves repeats from (and fills) a
//                       persistent schedule-artifact store; --seed feeds
//                       workload inputs and `randomN` generated kernels
//   cgra-tool explore   --kernels dotprod,fir [--space space.json]
//                       [--strategy genetic] [--seed 42] [--budget 64]
//                       [--population 8] [--threads 4] [--cache cachedir]
//                       [--stable] [--out front.json] [--metrics m.txt]
//                       design-space auto-tuner: search the composition
//                       space for the Pareto front over modeled area vs.
//                       schedule quality; deterministic under --seed,
//                       cache-accelerated across generations and runs
//   cgra-tool serve     [--cache cachedir] [--threads 4] [--socket p.sock]
//                       [--tcp 0] [--max-clients 32] [--queue-bound 256]
//                       concurrent batch compile server: JSONL schedule
//                       requests on stdin, a unix socket and/or loopback
//                       TCP; one versioned JSON response per line, in
//                       per-connection request order, deduplicated by cache
//                       key across all clients; {"stats":true} answers live
//                       metrics; SIGTERM drains gracefully. --connect
//                       TARGET flips to client mode (stdin -> a running
//                       server -> stdout)
//
// Every subcommand accepts `--help` and prints its flag table. Flags take
// either `--key value` or `--key=value`. One option table is shared by all
// subcommands (see kFlagTable), so a flag spells and behaves the same
// everywhere it appears.
//
// Compositions: mesh4|mesh6|mesh8|mesh9|mesh12|mesh16, A..F (Fig. 14), or a
// path to a Fig. 8-style JSON description. Kernels: bundled workloads (see
// `list`) or user kernels via --kernel-file f.kir with inputs passed as
// --local name=value and --array name=v1,v2,... (array flags allocate a heap
// array and bind its handle to the named parameter), e.g.
//
//   cgra-tool simulate --comp mesh4 --kernel-file my.kir [continued]
//       --array data=3,1,2 --local n=3
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <system_error>

#include "apps/kernels.hpp"
#include "arch/factory.hpp"
#include "artifact/client.hpp"
#include "artifact/service.hpp"
#include "artifact/store.hpp"
#include "artifact/sweep_cache.hpp"
#include "arch/resource_model.hpp"
#include "ctx/contexts.hpp"
#include "ctx/serialize.hpp"
#include "explore/explorer.hpp"
#include "host/token_machine.hpp"
#include "kir/interp.hpp"
#include "kir/lower_bytecode.hpp"
#include "kir/lower_cdfg.hpp"
#include "kir/parser.hpp"
#include "kir/passes.hpp"
#include "kir/random_kernel.hpp"
#include "sched/analysis.hpp"
#include "sched/job_key.hpp"
#include "sched/scheduler.hpp"
#include "sched/sweep.hpp"
#include "sched/validate.hpp"
#include "sim/report.hpp"
#include "sim/simulator.hpp"
#include "support/fs.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "synth/synthesis.hpp"
#include "vgen/verilog.hpp"

namespace {

using namespace cgra;

// ---------------------------------------------------------------------------
// Option table. One FlagSpec per flag, shared by every subcommand that
// accepts it; a CommandSpec selects the subset it understands. Parsing is
// table-driven: whether a flag consumes a value is looked up, never guessed
// from the shape of the next argument.

struct FlagSpec {
  const char* name;       ///< without the leading "--"
  bool takesValue;        ///< --key value / --key=value vs. boolean switch
  bool repeatable;        ///< may appear more than once (--local, --array)
  const char* valueName;  ///< placeholder shown in --help
  const char* help;
};

constexpr FlagSpec kFlagTable[] = {
    {"comp", true, false, "NAME",
     "composition: meshN, A..F, or a .json path (default mesh4)"},
    {"comps", true, false, "LIST",
     "comma-separated compositions (default mesh4,mesh9)"},
    {"kernel", true, false, "NAME",
     "bundled kernel (default adpcm; see `cgra-tool list`)"},
    {"kernels", true, false, "LIST",
     "comma-separated kernels: bundled names, randomN, .kir file paths, or "
     "`suite` (every .kir under --kernel-dir)"},
    {"kernel-file", true, false, "PATH", "user kernel in KIR text form"},
    {"kernel-dir", true, false, "DIR",
     "directory the `suite` kernel token expands from (default "
     "examples/kernels)"},
    {"switch-strategy", true, false, "NAME",
     "switch lowering: auto|linear|bucket (default auto: bucket at >= 6 "
     "cases)"},
    {"local", true, true, "NAME=V", "initial value of a kernel local"},
    {"array", true, true, "NAME=V1,V2,...",
     "heap array bound to a kernel parameter"},
    {"unroll", true, false, "N", "unroll loops N times before lowering"},
    {"cse", false, false, "", "run common-subexpression elimination first"},
    {"max-contexts", true, false, "N",
     "override the composition's context-memory budget"},
    {"trace", true, false, "PATH",
     "write the decision trace as Chrome trace-event JSON; for sweep, a "
     "directory receiving one file per job"},
    {"trace-capacity", true, false, "N",
     "decision-trace ring capacity in events (default 65536)"},
    {"gantt", false, false, "", "print the schedule as a Gantt chart"},
    {"dump", false, false, "", "print the full schedule listing"},
    {"contexts", true, false, "PATH", "write the context-image JSON"},
    {"memfiles", true, false, "PREFIX",
     "write $readmemh context-memory files"},
    {"verilog", true, false, "PATH", "write synthesizable Verilog"},
    {"dot", true, false, "PATH", "write the CDFG in Graphviz dot form"},
    {"baseline", false, false, "",
     "also run the sequential token-machine baseline"},
    {"counters", false, false, "",
     "collect cycle-accurate hardware counters and print the achieved "
     "utilization report"},
    {"json", true, false, "PATH", "write the observability report as JSON"},
    {"csv", true, false, "PATH", "write the per-PE report table as CSV"},
    {"stable", false, false, "",
     "omit volatile fields (thread count, wall times) from --metrics JSON "
     "so output is byte-stable across machines"},
    {"threads", true, false, "N",
     "worker threads (0 = hardware concurrency)"},
    {"metrics", true, false, "PATH",
     "write the aggregated sweep-metrics JSON report (sweep) or the final "
     "Prometheus exposition (serve, explore)"},
    {"area-weight", true, false, "W",
     "synthesis score weight of LUT area (default 0.25)"},
    {"out", true, false, "PATH",
     "write the result JSON: winning composition (synthesize) or "
     "Pareto-front report (explore)"},
    {"space", true, false, "PATH",
     "composition-space spec JSON bounding the explore search (omit for "
     "the built-in space)"},
    {"strategy", true, false, "NAME",
     "explore search strategy: random|hillclimb|genetic (default genetic)"},
    {"seed", true, false, "N",
     "seed for every randomized path — workload input data, randomN "
     "generated kernels, the explore search (default 42)"},
    {"budget", true, false, "N",
     "maximum distinct candidate evaluations in explore (default 64)"},
    {"population", true, false, "N",
     "explore candidate proposals per generation (default 8)"},
    {"cache", true, false, "DIR",
     "content-addressed schedule-artifact cache directory (created if "
     "missing; repeated jobs are served without rescheduling)"},
    {"cache-bytes", true, false, "N",
     "cache disk budget in bytes; past it, least-recently-used artifacts "
     "are evicted (default 268435456)"},
    {"socket", true, false, "PATH",
     "serve on a unix domain socket (combinable with --tcp)"},
    {"tcp", true, false, "PORT",
     "serve on 127.0.0.1:PORT (0 picks a free port, printed on stderr)"},
    {"max-queue", true, false, "N",
     "per-connection in-flight cap; reading from a connection pauses past "
     "it (default 64)"},
    {"queue-bound", true, false, "N",
     "global admitted-request bound; past it requests are shed with "
     "error code `overloaded` (default 256)"},
    {"max-clients", true, false, "N",
     "maximum concurrent socket clients; extra connections are refused "
     "(default 0 = unlimited)"},
    {"artifact", false, false, "",
     "attach the full artifact document to every successful response"},
    {"max-connections", true, false, "N",
     "exit after N socket connections (default 0 = serve until SIGTERM)"},
    {"connect", true, false, "TARGET",
     "client mode: pipe stdin JSONL to a running server (unix socket PATH "
     "or tcp:PORT) and print its responses"},
    {"access-log", true, false, "PATH",
     "append one JSONL access-log line per served request (id, peer, key "
     "prefix, outcome, span breakdown in microseconds)"},
    {"trace-sample", true, false, "N",
     "record a decision trace for every Nth cold scheduling run and write "
     "its Chrome JSON into --trace-dir (0 = off)"},
    {"trace-dir", true, false, "DIR",
     "directory receiving sampled serve traces (created if missing)"},
    {"help", false, false, "", "show this subcommand's flags"},
};

const FlagSpec* findFlag(const std::string& name) {
  for (const FlagSpec& f : kFlagTable)
    if (name == f.name) return &f;
  return nullptr;
}

class Args;

struct CommandSpec {
  const char* name;
  const char* summary;
  std::vector<const char*> flags;  ///< accepted flag names (kFlagTable keys)
  int (*run)(const Args&);

  bool accepts(const std::string& flag) const {
    if (flag == "help") return true;
    for (const char* f : flags)
      if (flag == f) return true;
    return false;
  }
};

/// Table-driven flag parser: `--key value` and `--key=value`, validated
/// against the subcommand's accepted set so a typo fails loudly instead of
/// being silently ignored.
class Args {
public:
  Args(int argc, char** argv, const CommandSpec& cmd) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0)
        throw Error("unexpected argument: " + arg +
                    " (flags start with --; see `cgra-tool " +
                    std::string(cmd.name) + " --help`)");
      arg = arg.substr(2);
      std::string inlineValue;
      bool hasInline = false;
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inlineValue = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
        hasInline = true;
      }
      const FlagSpec* spec = findFlag(arg);
      if (spec == nullptr || !cmd.accepts(arg))
        throw Error("unknown flag --" + arg + " for `cgra-tool " +
                    std::string(cmd.name) + "` (see --help)");
      std::string value;
      if (spec->takesValue) {
        if (hasInline) {
          value = inlineValue;
        } else {
          if (i + 1 >= argc)
            throw Error("--" + arg + " expects a value");
          value = argv[++i];
        }
      } else if (hasInline) {
        throw Error("--" + arg + " does not take a value");
      }
      if (spec->repeatable)
        repeated_[arg].push_back(value);
      else
        values_[arg] = value;
    }
  }

  const std::vector<std::string>& repeated(const std::string& key) const {
    static const std::vector<std::string> kEmpty;
    const auto it = repeated_.find(key);
    return it == repeated_.end() ? kEmpty : it->second;
  }

  bool has(const std::string& key) const { return values_.contains(key); }
  std::string get(const std::string& key, const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  unsigned getUnsigned(const std::string& key, unsigned fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : static_cast<unsigned>(std::stoul(it->second));
  }
  double getDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

private:
  std::map<std::string, std::string> values_;
  std::map<std::string, std::vector<std::string>> repeated_;
};

Composition resolveComposition(const std::string& name) {
  if (name.rfind("mesh", 0) == 0)
    return makeMesh(static_cast<unsigned>(std::stoul(name.substr(4))));
  if (name.size() == 1 && name[0] >= 'A' && name[0] <= 'F')
    return makeIrregular(name[0]);
  if (name.find(".json") != std::string::npos)
    return Composition::fromJsonFile(name);
  throw Error("unknown composition \"" + name +
              "\" (expected meshN, A..F, or a .json path)");
}

std::vector<std::string> splitCsv(const std::string& list) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t comma = list.find(',', pos);
    out.push_back(list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos));
    pos = comma == std::string::npos ? std::string::npos : comma + 1;
  }
  return out;
}

/// Fail fast on unwritable output destinations *before* scheduling work:
/// `flags` name file-valued options (their parent directory must be
/// writable), `dirFlags` directory-valued ones (created and probed). A bad
/// --metrics/--trace/--cache path aborts in milliseconds with a clear
/// message instead of after the whole run.
void preflightOutputs(const Args& args,
                      std::initializer_list<const char*> fileFlags,
                      std::initializer_list<const char*> dirFlags) {
  for (const char* flag : fileFlags)
    if (args.has(flag)) {
      try {
        fs::ensureWritableParent(args.get(flag));
      } catch (const std::exception& e) {
        throw Error("--" + std::string(flag) + " " + args.get(flag) +
                    " is not writable: " + e.what());
      }
    }
  for (const char* flag : dirFlags)
    if (args.has(flag)) {
      try {
        fs::ensureWritableDir(args.get(flag));
      } catch (const std::exception& e) {
        throw Error("--" + std::string(flag) + " " + args.get(flag) +
                    " is not writable: " + e.what());
      }
    }
}

/// Assembles ArtifactStore options from --cache / --cache-bytes.
artifact::StoreOptions storeOptions(const Args& args) {
  artifact::StoreOptions so;
  so.directory = args.get("cache");
  if (args.has("cache-bytes"))
    so.maxDiskBytes = std::stoull(args.get("cache-bytes"));
  return so;
}

/// Parses --seed (default 42, the historical allWorkloads seed, so runs
/// without the flag reproduce existing goldens byte-for-byte).
std::uint64_t parseSeed(const Args& args) {
  const std::string text = args.get("seed", "42");
  try {
    std::size_t used = 0;
    const std::uint64_t seed = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return seed;
  } catch (const std::exception&) {
    throw Error("invalid --seed \"" + text + "\" (expected an integer)");
  }
}

/// Resolves a kernel name: a bundled workload (input data drawn from
/// `seed`) or `randomN` — the property-test generator's kernel for
/// sub-stream N of `seed`, giving sweeps and explore an unbounded
/// deterministic kernel supply beyond the bundled suite.
apps::Workload resolveKernel(const std::string& name,
                             std::uint64_t seed = 42) {
  // Tokens naming a .kir file load it from disk (inputs default to zero;
  // scheduling-only commands never read them, `simulate` takes
  // --local/--array via --kernel-file instead).
  if (name.find(".kir") != std::string::npos) {
    apps::Workload w;
    w.fn = kir::parseKernelFile(name);
    w.name = w.fn.name();
    w.initialLocals.assign(w.fn.numLocals(), 0);
    return w;
  }
  if (name.rfind("random", 0) == 0 && name.size() > 6 &&
      name.find_first_not_of("0123456789", 6) == std::string::npos) {
    const std::uint64_t stream = std::stoull(name.substr(6));
    kir::RandomKernel rk = kir::generateRandomKernel(deriveSeed(seed, stream));
    apps::Workload w;
    w.name = name;
    w.fn = std::move(rk.fn);
    w.initialLocals = std::move(rk.initialLocals);
    w.heap = std::move(rk.heap);
    return w;
  }
  for (apps::Workload& w : apps::allWorkloads(seed))
    if (w.name == name) return std::move(w);
  throw Error("unknown kernel \"" + name + "\" (see `cgra-tool list`)");
}

/// Expands --kernels, replacing the `suite` token by every .kir file under
/// --kernel-dir in sorted (deterministic) order.
std::vector<std::string> expandKernelList(const Args& args,
                                          const std::string& defaultList) {
  std::vector<std::string> out;
  for (const std::string& name : splitCsv(args.get("kernels", defaultList))) {
    if (name != "suite") {
      out.push_back(name);
      continue;
    }
    const std::string dir = args.get("kernel-dir", "examples/kernels");
    std::vector<std::string> files;
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir, ec))
      if (entry.path().extension() == ".kir")
        files.push_back(entry.path().string());
    if (ec)
      throw Error("cannot read kernel suite directory \"" + dir +
                  "\": " + ec.message());
    if (files.empty())
      throw Error("kernel suite directory \"" + dir +
                  "\" contains no .kir files");
    std::sort(files.begin(), files.end());
    out.insert(out.end(), files.begin(), files.end());
  }
  return out;
}

/// Maps --unroll/--cse/--switch-strategy onto the frontend pipeline
/// configuration shared by schedule/simulate/sweep/explore/kir.
kir::FrontendOptions frontendOptions(const Args& args) {
  kir::FrontendOptions fo;
  fo.cse = args.has("cse");
  fo.unrollFactor = args.getUnsigned("unroll", 1);
  const std::string strategy = args.get("switch-strategy", "auto");
  if (strategy == "linear")
    fo.switchStrategy = kir::SwitchStrategy::Linear;
  else if (strategy == "bucket")
    fo.switchStrategy = kir::SwitchStrategy::Bucket;
  else if (strategy != "auto")
    throw Error("unknown --switch-strategy \"" + strategy +
                "\" (expected auto, linear or bucket)");
  return fo;
}

int cmdList(const Args&) {
  std::cout << "kernels:\n";
  for (const apps::Workload& w : apps::allWorkloads())
    std::cout << "  " << w.name << "  (" << w.fn.numLocals() << " locals, "
              << w.heap.numArrays() << " arrays)\n";
  std::cout << "compositions:\n  mesh4 mesh6 mesh8 mesh9 mesh12 mesh16 "
               "(Fig. 13)\n  A B C D E F (Fig. 14, 8 PEs)\n  or a Fig. "
               "8-style JSON file\n";
  return 0;
}

int cmdDescribe(const Args& args) {
  const Composition comp = resolveComposition(args.get("comp", "mesh4"));
  std::cout << "composition " << comp.name() << ": " << comp.numPEs()
            << " PEs, " << comp.interconnect().numLinks() << " links\n";
  TextTable table({"PE", "RF", "DMA", "MUL", "ops", "sources"});
  for (PEId p = 0; p < comp.numPEs(); ++p) {
    const PEDescriptor& pe = comp.pe(p);
    std::string sources;
    for (PEId s : comp.interconnect().sources(p)) {
      if (!sources.empty()) sources += ',';
      sources += std::to_string(s);
    }
    table.addRow({std::to_string(p), std::to_string(pe.regfileSize()),
                  pe.hasDma() ? "yes" : "-",
                  pe.supports(Op::IMUL) ? "yes" : "-",
                  std::to_string(pe.ops().size()), sources});
  }
  table.print(std::cout);
  const ResourceEstimate est = estimateResources(comp);
  std::cout << "estimated synthesis: " << fmt(est.frequencyMHz, 1)
            << " MHz, LUT " << fmt(est.lutLogicPct(), 2) << "%, DSP "
            << est.dsp << ", BRAM " << est.bram << "\n";
  return 0;
}

struct Prepared {
  apps::Workload workload;
  kir::Function prepared;
  Cdfg graph;
};

/// Builds a workload from --kernel-file + --local/--array input flags.
apps::Workload loadUserKernel(const Args& args);

int cmdKir(const Args& args) {
  apps::Workload w = args.has("kernel-file")
                         ? loadUserKernel(args)
                         : resolveKernel(args.get("kernel", "adpcm"),
                                         parseSeed(args));
  kir::FrontendOptions fo = frontendOptions(args);
  fo.captureStages = true;
  const kir::FrontendResult res = kir::runFrontendPipeline(w.fn, fo);
  for (const kir::StageRecord& stage : res.stages) {
    if (stage.name == "input") {
      std::cout << "== input ==\n" << stage.ir;
      continue;
    }
    if (!stage.ran) {
      std::cout << "== " << stage.name << " (skipped) ==\n";
      continue;
    }
    std::cout << "== " << stage.name << " ==\n" << stage.ir;
  }
  const char* irregular = kir::firstIrregularConstruct(res.fn);
  std::cout << "== summary ==\n"
            << kir::countStmtNodes(res.fn) << " statements, "
            << kir::countExprNodes(res.fn) << " expressions, "
            << res.fn.numLocals() << " locals; "
            << (irregular == nullptr
                    ? std::string("structured (CDFG-ready)")
                    : "still contains " + std::string(irregular))
            << "\n";
  return irregular == nullptr ? 0 : 1;
}

apps::Workload loadUserKernel(const Args& args) {
  apps::Workload w;
  w.fn = kir::parseKernelFile(args.get("kernel-file"));
  w.name = w.fn.name();
  w.initialLocals.assign(w.fn.numLocals(), 0);
  auto splitEq = [](const std::string& s) {
    const std::size_t eq = s.find('=');
    if (eq == std::string::npos)
      throw Error("expected name=value, got: " + s);
    return std::make_pair(s.substr(0, eq), s.substr(eq + 1));
  };
  for (const std::string& spec : args.repeated("array")) {
    const auto [name, csv] = splitEq(spec);
    std::vector<std::int32_t> values;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
      const std::size_t comma = csv.find(',', pos);
      values.push_back(static_cast<std::int32_t>(
          std::stol(csv.substr(pos, comma - pos))));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    w.initialLocals[w.fn.localByName(name)] = w.heap.alloc(std::move(values));
  }
  for (const std::string& spec : args.repeated("local")) {
    const auto [name, value] = splitEq(spec);
    w.initialLocals[w.fn.localByName(name)] =
        static_cast<std::int32_t>(std::stol(value));
  }
  return w;
}

Prepared prepareKernel(const Args& args) {
  Prepared p{args.has("kernel-file")
                 ? loadUserKernel(args)
                 : resolveKernel(args.get("kernel", "adpcm")),
             kir::Function(""),
             {}};
  p.prepared = kir::runFrontendPipeline(p.workload.fn,
                                        frontendOptions(args)).fn;
  p.graph = kir::lowerToCdfg(p.prepared).graph;
  return p;
}

/// Shared request assembly for schedule/explain/analyze: --max-contexts and
/// --trace/--trace-capacity map onto ScheduleRequest fields.
ScheduleRequest makeRequest(const Args& args, const Prepared& p,
                            bool forceTrace) {
  ScheduleRequest request(p.graph);
  SchedulerOptions opts;
  opts.maxContexts = args.getUnsigned("max-contexts", 0);
  request.options = opts;
  if (forceTrace || args.has("trace")) {
    request.trace.enabled = true;
    request.trace.capacity = args.getUnsigned("trace-capacity", 1u << 16);
  }
  return request;
}

void writeTraceFile(const Args& args, const ScheduleReport& report,
                    const std::string& label) {
  if (!args.has("trace") || report.trace == nullptr) return;
  json::writeFile(args.get("trace"), report.trace->toChromeJson(label));
  std::cout << "wrote " << args.get("trace") << "\n";
}

int cmdSchedule(const Args& args) {
  preflightOutputs(args,
                   {"trace", "contexts", "memfiles", "verilog", "dot"},
                   {"cache"});
  const Composition comp = resolveComposition(args.get("comp", "mesh4"));
  Prepared p = prepareKernel(args);

  const ScheduleRequest request = makeRequest(args, p, false);
  std::optional<artifact::ArtifactStore> store;
  std::string key;
  bool cached = false;
  ScheduleReport result;
  if (args.has("cache")) {
    store.emplace(storeOptions(args));
    key = scheduleJobKey(comp, p.graph, request.options.value());
    if (const auto art = store->lookup(key)) {
      cached = true;
      result.ok = art->ok;
      result.schedule = art->schedule;
      result.stats = art->stats;
      result.metrics = art->metrics;
      result.failure = art->failure;
    }
  }
  if (!cached) {
    const Scheduler scheduler(comp);
    result = scheduler.schedule(request);
    if (store.has_value()) {
      auto art = artifact::ScheduleArtifact::fromReport(key, result);
      if (result.ok) art.contexts = generateContexts(result.schedule, comp);
      store->insert(std::make_shared<const artifact::ScheduleArtifact>(
          std::move(art)));
    }
  }
  if (!result.ok) {
    writeTraceFile(args, result, p.workload.name + "@" + comp.name());
    std::cerr << "cgra-tool: scheduling failed ("
              << failureReasonName(result.failure.reason)
              << "): " << result.failure.message
              << "\n(run `cgra-tool explain` with the same flags for the "
                 "decision log)\n";
    return 1;
  }
  checkSchedule(result.schedule, p.graph, comp);
  const ContextImages images = generateContexts(result.schedule, comp);

  std::cout << "scheduled " << p.workload.name << " on " << comp.name()
            << ": " << result.schedule.length << " contexts, "
            << images.totalBits() << " context bits, max RF entries ";
  unsigned maxRf = 0;
  for (unsigned r : images.physRegsUsed) maxRf = std::max(maxRf, r);
  std::cout << maxRf << ", " << result.stats.copiesInserted
            << " copies, " << result.stats.fusedWrites << " fused writes, "
            << fmt(result.stats.wallTimeMs, 2) << " ms";
  if (cached)
    std::cout << " (cache hit " << key.substr(0, 12) << ")";
  std::cout << "\n";

  const ScheduleAnalysis analysis = analyzeSchedule(result.schedule, comp);
  std::cout << "avg PE utilization " << fmt(analysis.avgUtilization * 100, 1)
            << "%, peak parallelism " << analysis.peakParallelism << "\n";

  if (args.has("gantt"))
    std::cout << "\n" << ganttChart(result.schedule, comp);
  if (args.has("dump")) std::cout << "\n" << result.schedule.toString(comp);
  if (args.has("contexts")) {
    json::writeFile(args.get("contexts"), contextImagesToJson(images));
    std::cout << "wrote " << args.get("contexts") << "\n";
  }
  if (args.has("memfiles")) {
    const std::string prefix = args.get("memfiles");
    for (PEId p2 = 0; p2 < comp.numPEs(); ++p2)
      std::ofstream(prefix + "_pe" + std::to_string(p2) + ".mem")
          << toMemFile(images.peContexts[p2], images.peWidths[p2],
                       "pe" + std::to_string(p2) + " context memory");
    std::ofstream(prefix + "_cbox.mem")
        << toMemFile(images.cboxContexts, images.cboxWidth,
                     "C-Box context memory");
    std::ofstream(prefix + "_ccu.mem")
        << toMemFile(images.ccuContexts, images.ccuWidth,
                     "CCU context memory");
    std::cout << "wrote " << prefix << "_*.mem ($readmemh)\n";
  }
  if (args.has("verilog")) {
    std::ofstream(args.get("verilog")) << generateVerilog(comp);
    std::cout << "wrote " << args.get("verilog") << "\n";
  }
  if (args.has("dot")) {
    std::ofstream(args.get("dot")) << p.graph.toDot(p.workload.name);
    std::cout << "wrote " << args.get("dot") << "\n";
  }
  writeTraceFile(args, result, p.workload.name + "@" + comp.name());
  return 0;
}

int cmdExplain(const Args& args) {
  preflightOutputs(args, {"trace"}, {});
  const Composition comp = resolveComposition(args.get("comp", "mesh4"));
  Prepared p = prepareKernel(args);

  const Scheduler scheduler(comp);
  const ScheduleReport report = scheduler.schedule(makeRequest(args, p, true));

  std::cout << "== " << p.workload.name << " on " << comp.name() << " ==\n"
            << report.trace->explain(&p.graph, &comp);
  if (report.ok)
    std::cout << "outcome: scheduled in " << report.stats.contextsUsed
              << " contexts\n";
  else
    std::cout << "outcome: UNMAPPABLE ("
              << failureReasonName(report.failure.reason)
              << "): " << report.failure.message << "\n";
  writeTraceFile(args, report, p.workload.name + "@" + comp.name());
  // A diagnostic command: inspecting an unmappable kernel is a successful
  // run of `explain`, so the exit code stays 0 either way.
  return 0;
}

/// Shared rendering for `stats` and `simulate --counters`: per-PE table,
/// derived scalars, heatmap, plus --json/--csv exports. Uses the Report
/// accessors so every surface prints identical definitions of utilization.
void emitReport(const Args& args, const Report& report, const Schedule& sched,
                const Composition& comp) {
  const ScheduleQuality& q = report.quality;
  const SimCounters* ctr =
      report.counters.has_value() ? &*report.counters : nullptr;

  if (ctr) {
    TextTable t({"PE", "busy", "nop", "idle", "issued", "squashed", "rfR",
                 "rfW", "util"});
    for (PEId pe = 0; pe < ctr->perPE.size(); ++pe) {
      const PECounters& pc = ctr->perPE[pe];
      t.addRow({std::to_string(pe), std::to_string(pc.busyCycles),
                std::to_string(pc.nopCycles), std::to_string(pc.idleCycles),
                std::to_string(pc.opsIssued), std::to_string(pc.squashedOps),
                std::to_string(pc.rfReads), std::to_string(pc.rfWrites),
                fmt(report.peUtilization(pe) * 100, 1) + "%"});
    }
    t.print(std::cout);
    std::cout << "achieved utilization "
              << fmt(report.achievedUtilization() * 100, 1) << "% (static "
              << fmt(report.staticUtilization() * 100, 1) << "%), squash rate "
              << fmt(report.squashRate() * 100, 1) << "%, "
              << fmt(report.cyclesPerOp(), 2) << " cycles/op, "
              << ctr->totalLinkTransfers() << " link transfers, "
              << ctr->cboxSlotWrites << " C-Box writes ("
              << ctr->cboxCombines << " combines)\n";
  } else {
    TextTable t({"PE", "busy", "util", "slack", "ops", "inserted"});
    for (const PEQuality& pq : q.perPE)
      t.addRow({std::to_string(pq.pe), std::to_string(pq.busyCycles),
                fmt(pq.utilization * 100, 1) + "%", std::to_string(pq.slack),
                std::to_string(pq.opsIssued),
                std::to_string(pq.insertedOps)});
    t.print(std::cout);
    std::cout << "static utilization " << fmt(q.staticUtilization * 100, 1)
              << "%, context occupancy " << fmt(q.contextOccupancy * 100, 1)
              << "%, copy ratio " << fmt(q.copyRatio * 100, 1)
              << "%, fused ratio " << fmt(q.fusedRatio * 100, 1) << "%, C-Box "
              << q.cboxBusyCycles << "/" << q.length << " contexts busy\n";
  }
  std::cout << "\n" << utilizationHeatmap(sched, comp, ctr);

  if (args.has("json")) {
    json::writeFile(args.get("json"), report.toJson());
    std::cout << "wrote " << args.get("json") << "\n";
  }
  if (args.has("csv")) {
    std::ofstream(args.get("csv")) << report.toCsv();
    std::cout << "wrote " << args.get("csv") << "\n";
  }
}

int cmdStats(const Args& args) {
  preflightOutputs(args, {"json", "csv"}, {});
  const Composition comp = resolveComposition(args.get("comp", "mesh4"));
  Prepared p = prepareKernel(args);
  const Scheduler scheduler(comp);
  const ScheduleReport result =
      scheduler.schedule(makeRequest(args, p, false));
  if (!result.ok) {
    std::cerr << "cgra-tool: scheduling failed ("
              << failureReasonName(result.failure.reason)
              << "): " << result.failure.message << "\n";
    return 1;
  }
  const Report report = makeReport(result.schedule, comp, &result.stats);
  std::cout << "== " << p.workload.name << " on " << comp.name() << " ==\n"
            << result.schedule.length << " contexts, "
            << report.quality.totalOps << " ops ("
            << report.quality.insertedOps << " inserted, "
            << report.quality.fusedWrites << " fused writes)\n";
  emitReport(args, report, result.schedule, comp);
  return 0;
}

int cmdSimulate(const Args& args) {
  preflightOutputs(args, {"json", "csv"}, {});
  const Composition comp = resolveComposition(args.get("comp", "mesh4"));
  Prepared p = prepareKernel(args);

  // Golden run.
  HostMemory goldenHeap = p.workload.heap;
  kir::Interpreter interp;
  const auto golden =
      interp.run(p.prepared, p.workload.initialLocals, goldenHeap);

  const Scheduler scheduler(comp);
  const ScheduleReport result =
      scheduler.schedule(ScheduleRequest(p.graph)).orThrow();
  const Schedule runnable =
      decodeContexts(generateContexts(result.schedule, comp), comp);

  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : runnable.liveIns)
    liveIns[lb.var] = p.workload.initialLocals[lb.var];
  HostMemory heap = p.workload.heap;
  SimOptions simOpts;
  simOpts.collectCounters = args.has("counters");
  const SimResult r = Simulator(comp, runnable).run(liveIns, heap, simOpts);

  const bool ok = heap == goldenHeap;
  std::cout << p.workload.name << " on " << comp.name() << ": "
            << r.runCycles << " cycles (" << r.invocationCycles
            << " incl. transfers), " << r.dmaLoads << " loads, "
            << r.dmaStores << " stores, energy " << fmt(r.energy, 0)
            << " — result " << (ok ? "MATCHES" : "DOES NOT MATCH")
            << " the reference interpreter\n";

  if (args.has("counters") || args.has("json") || args.has("csv")) {
    const Report report = makeReport(runnable, comp, &result.stats, &r);
    emitReport(args, report, runnable, comp);
  }

  if (args.has("baseline")) {
    const BytecodeFunction bc = kir::lowerToBytecode(p.workload.fn);
    HostMemory baseHeap = p.workload.heap;
    const TokenMachine tm;
    const TokenRunResult base =
        tm.run(bc, p.workload.initialLocals, baseHeap);
    std::cout << "baseline: " << base.cycles << " cycles -> speedup "
              << fmt(static_cast<double>(base.cycles) /
                         static_cast<double>(r.runCycles),
                     2)
              << "x\n";
  }
  return ok ? 0 : 1;
}

int cmdSweep(const Args& args) {
  preflightOutputs(args, {"metrics"}, {"trace", "cache"});
  // Resolve the cross-product inputs. Deques keep element addresses stable
  // for the sweep jobs' non-owning pointers.
  std::deque<Composition> comps;
  for (const std::string& name : splitCsv(args.get("comps", "mesh4,mesh9")))
    comps.push_back(resolveComposition(name));

  const kir::FrontendOptions fo = frontendOptions(args);
  const std::uint64_t seed = parseSeed(args);
  std::deque<std::pair<std::string, Cdfg>> graphs;
  for (const std::string& name : expandKernelList(args, "adpcm")) {
    apps::Workload w = resolveKernel(name, seed);
    const kir::Function fn = kir::runFrontendPipeline(w.fn, fo).fn;
    graphs.emplace_back(w.name, kir::lowerToCdfg(fn).graph);
  }

  SchedulerOptions jobOpts;
  jobOpts.maxContexts = args.getUnsigned("max-contexts", 0);
  std::vector<SweepJob> jobs;
  for (const Composition& comp : comps)
    for (const auto& [name, graph] : graphs)
      jobs.push_back(SweepJob{&comp, &graph, name + "@" + comp.name(),
                              jobOpts});

  SweepOptions opts;
  opts.threads = args.getUnsigned("threads", 0);
  opts.keepSchedules = false;
  if (args.has("trace")) {
    opts.traceDir = args.get("trace");
    opts.trace.capacity = args.getUnsigned("trace-capacity", 1u << 16);
  }
  std::optional<artifact::ArtifactStore> store;
  if (args.has("cache")) store.emplace(storeOptions(args));
  const SweepReport report = store.has_value()
                                 ? artifact::runCachedSweep(jobs, opts, *store)
                                 : runSweep(jobs, opts);

  TextTable table({"Job", "Contexts", "Util", "Copies", "Rejections", "ms"});
  for (const SweepJobResult& r : report.results)
    table.addRow({r.label,
                  r.ok ? std::to_string(r.stats.contextsUsed)
                       : "FAIL: " + r.error.substr(0, 40),
                  r.ok ? fmt(r.staticUtilization * 100, 1) + "%" : "-",
                  r.ok ? std::to_string(r.metrics.copiesInserted) : "-",
                  r.ok ? std::to_string(r.metrics.probeRejections) : "-",
                  r.ok ? fmt(r.metrics.totalMs, 2) : "-"});
  table.print(std::cout);
  std::cout << report.results.size() - report.failures << "/"
            << report.results.size() << " jobs scheduled in "
            << fmt(report.wallTimeMs, 1) << " ms on " << report.threadsUsed
            << " thread(s) (" << report.routingCacheEntries
            << " arch model(s), "
            << report.aggregate.nodesScheduled << " nodes, "
            << report.aggregate.probeRejections
            << " probe rejections, mean utilization "
            << fmt(report.meanStaticUtilization * 100, 1) << "%)\n";
  if (report.failures > 0) {
    std::cout << "failures by reason:";
    for (std::size_t i = 0; i < report.failuresByReason.size(); ++i)
      if (report.failuresByReason[i] > 0)
        std::cout << " " << failureReasonName(static_cast<FailureReason>(i))
                  << "=" << report.failuresByReason[i];
    std::cout << "\n";
  }
  if (report.dedupedJobs > 0)
    std::cout << report.dedupedJobs
              << " duplicate job(s) deduplicated within the sweep\n";
  if (report.cacheEnabled)
    std::cout << "artifact cache: " << report.cacheHits << " hit(s), "
              << report.cacheMisses << " miss(es), " << report.cacheEvictions
              << " eviction(s) in " << store->directory() << "\n";
  if (!opts.traceDir.empty())
    std::cout << "wrote per-job traces under " << opts.traceDir << "\n";
  if (args.has("metrics")) {
    json::writeFile(args.get("metrics"),
                    report.toJson(/*includeVolatile=*/!args.has("stable")));
    std::cout << "wrote " << args.get("metrics") << "\n";
  }
  return report.failures == 0 ? 0 : 1;
}

int cmdExplore(const Args& args) {
  preflightOutputs(args, {"out", "metrics"}, {"cache"});
  explore::CompositionSpace space =
      args.has("space")
          ? explore::CompositionSpace::fromJsonFile(args.get("space"))
          : explore::CompositionSpace{};

  const std::uint64_t seed = parseSeed(args);
  const kir::FrontendOptions fo = frontendOptions(args);
  // Deque for stable addresses: ExploreKernel carries non-owning pointers.
  std::deque<std::pair<std::string, Cdfg>> graphs;
  for (const std::string& name : expandKernelList(args, "dotprod,fir,gcd")) {
    apps::Workload w = resolveKernel(name, seed);
    const kir::Function fn = kir::runFrontendPipeline(w.fn, fo).fn;
    graphs.emplace_back(w.name, kir::lowerToCdfg(fn).graph);
  }
  std::vector<explore::ExploreKernel> kernels;
  for (const auto& [name, graph] : graphs)
    kernels.push_back(explore::ExploreKernel{name, &graph, 1.0});

  explore::ExploreOptions opts;
  opts.strategy = args.get("strategy", "genetic");
  opts.seed = seed;
  opts.budget = args.getUnsigned("budget", 64);
  opts.population = args.getUnsigned("population", 8);
  opts.sweep.threads = args.getUnsigned("threads", 0);

  std::optional<artifact::ArtifactStore> store;
  if (args.has("cache")) store.emplace(storeOptions(args));
  explore::Explorer explorer(std::move(space), std::move(kernels), opts,
                             store.has_value() ? &*store : nullptr);
  const explore::ExploreReport report = explorer.run();

  TextTable table(
      {"Candidate", "Wlen", "Util", "LUTs", "DSP", "BRAM", "MHz"});
  for (const explore::CandidateEval& e : report.front)
    table.addRow({e.key, fmt(e.weightedLength, 0),
                  fmt(e.meanUtilization * 100, 1) + "%", fmt(e.areaLuts, 0),
                  std::to_string(e.dsp), std::to_string(e.bram),
                  fmt(e.frequencyMHz, 1)});
  table.print(std::cout);
  std::cout << report.front.size() << " Pareto-optimal candidate(s) of "
            << report.evaluations << " evaluated ("
            << report.dominatedCount << " dominated, "
            << report.infeasibleCount << " infeasible) in "
            << report.generations.size() << " generation(s), "
            << fmt(report.wallTimeMs, 1) << " ms [" << report.strategy
            << ", seed " << report.seed << "]\n";
  if (store.has_value())
    std::cout << "artifact cache: " << report.counters.storeHits
              << " hit(s), " << report.counters.storeMisses << " miss(es) in "
              << store->directory() << "\n";
  if (args.has("out")) {
    json::writeFile(args.get("out"),
                    report.toJson(/*includeVolatile=*/!args.has("stable")));
    std::cout << "wrote " << args.get("out") << "\n";
  }
  if (args.has("metrics")) {
    std::ofstream out(args.get("metrics"));
    if (!out) throw Error("cannot write --metrics " + args.get("metrics"));
    out << explorer.metricsText();
    std::cout << "wrote " << args.get("metrics") << "\n";
  }
  // An empty front means no candidate scheduled the whole kernel set —
  // the search found nothing usable, which callers should notice.
  return report.front.empty() ? 1 : 0;
}

/// The live service a SIGTERM/SIGINT handler asks to drain. notifyDrain()
/// is async-signal-safe (one atomic store + one pipe write).
std::atomic<artifact::Service*> g_serveInstance{nullptr};

extern "C" void serveSignalHandler(int) {
  artifact::Service* s = g_serveInstance.load(std::memory_order_relaxed);
  if (s != nullptr) s->notifyDrain();
}

/// Parses a TCP port, rejecting junk, trailing garbage, and values the
/// uint16 would silently truncate.
std::uint16_t parseTcpPort(const std::string& text) {
  unsigned long port = 0;
  std::size_t used = 0;
  try {
    port = std::stoul(text, &used);
  } catch (const std::exception&) {
    throw Error("invalid TCP port \"" + text + "\" (expected 1-65535)");
  }
  if (used != text.size() || port < 1 || port > 65535)
    throw Error("invalid TCP port \"" + text + "\" (expected 1-65535)");
  return static_cast<std::uint16_t>(port);
}

/// Client mode: pipe stdin JSONL into a running server and print its
/// responses. TARGET is a unix socket path or `tcp:PORT`.
int runServeClient(const std::string& target) {
  artifact::JsonlClient client =
      target.rfind("tcp:", 0) == 0
          ? artifact::JsonlClient::connectTcp(parseTcpPort(target.substr(4)))
          : artifact::JsonlClient::connectUnix(target);
  std::uint64_t sent = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    client.sendLine(line);
    ++sent;
  }
  client.shutdownWrite();
  std::uint64_t received = 0;
  while (client.recvLine(line)) {
    std::cout << line << "\n";
    ++received;
  }
  std::cout.flush();
  std::cerr << "serve client: " << sent << " request(s), " << received
            << " response(s)\n";
  return received == sent ? 0 : 1;
}

int cmdServe(const Args& args) {
  if (args.has("connect")) return runServeClient(args.get("connect"));

  preflightOutputs(args, {"metrics", "access-log"}, {"cache", "trace-dir"});
  artifact::ArtifactStore store(storeOptions(args));
  artifact::ServiceOptions opts;
  opts.threads = args.getUnsigned("threads", 0);
  opts.maxInFlight = args.getUnsigned("max-queue", 64);
  opts.queueBound = args.getUnsigned("queue-bound", 256);
  opts.maxClients = args.getUnsigned("max-clients", 0);
  opts.maxConnections = args.getUnsigned("max-connections", 0);
  opts.includeArtifact = args.has("artifact");
  opts.accessLogPath = args.get("access-log", "");
  opts.traceSample = args.getUnsigned("trace-sample", 0);
  opts.traceDir = args.get("trace-dir", "");

  artifact::Service service(store, opts);
  const bool sockets = args.has("socket") || args.has("tcp");
  if (sockets) {
    if (args.has("socket")) {
      service.addUnixListener(args.get("socket"));
      std::cerr << "cgra-tool: serving on " << args.get("socket") << "\n";
    }
    if (args.has("tcp")) {
      const unsigned requested = args.getUnsigned("tcp", 0);
      if (requested > 65535)
        throw Error("invalid TCP port \"" + std::to_string(requested) +
                    "\" (expected 0-65535; 0 picks a free port)");
      const std::uint16_t port =
          service.addTcpListener(static_cast<std::uint16_t>(requested));
      std::cerr << "cgra-tool: serving on 127.0.0.1:" << port << "\n";
    }
    g_serveInstance.store(&service, std::memory_order_relaxed);
    struct sigaction sa {};
    sa.sa_handler = serveSignalHandler;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    service.start();
    service.waitDone();
    service.stop();
    g_serveInstance.store(nullptr, std::memory_order_relaxed);
  } else {
    service.serveStream(std::cin, std::cout);
  }
  const artifact::ServiceStats stats = service.stats();
  if (args.has("metrics")) {
    // Final scrape of the Prometheus exposition; live scraping goes
    // through {"metrics": true} requests on the wire.
    std::ofstream out(args.get("metrics"));
    if (!out) throw Error("cannot write --metrics " + args.get("metrics"));
    out << service.metricsText();
  }
  // Session summary on stderr: stdout carries only JSONL responses.
  std::cerr << "serve: " << stats.requests << " request(s), "
            << stats.scheduled << " scheduled, " << stats.cacheHits
            << " cache hit(s), " << stats.deduped << " deduped, "
            << stats.parseErrors << " error(s)";
  if (stats.shedOverload + stats.shedShutdown > 0)
    std::cerr << ", " << stats.shedOverload << " shed overloaded, "
              << stats.shedShutdown << " shed shutdown";
  if (sockets)
    std::cerr << "; " << stats.connectionsAccepted << " connection(s), "
              << stats.connectionsRefused << " refused";
  if (stats.latencyCount > 0)
    std::cerr << "; p50 " << static_cast<std::uint64_t>(stats.latencyP50Us)
              << " us, p99 " << static_cast<std::uint64_t>(stats.latencyP99Us)
              << " us";
  std::cerr << "\n";
  return 0;
}

int cmdSynthesize(const Args& args) {
  std::vector<apps::Workload> workloads;
  for (const std::string& name :
       splitCsv(args.get("kernels", "adpcm,fir,gcd")))
    workloads.push_back(resolveKernel(name));

  std::vector<Cdfg> graphs;
  for (const apps::Workload& w : workloads)
    graphs.push_back(kir::lowerToCdfg(w.fn).graph);
  std::vector<DomainKernel> kernels;
  for (std::size_t i = 0; i < graphs.size(); ++i)
    kernels.push_back(DomainKernel{&graphs[i], 1.0, workloads[i].name});

  SynthesisOptions opts;
  opts.areaWeight = args.getDouble("area-weight", 0.25);
  opts.threads = args.getUnsigned("threads", 0);
  const SynthesisReport report = synthesizeComposition(kernels, opts);

  std::cout << "domain: " << fmt(report.profile.mulFraction * 100, 1)
            << "% IMUL, " << fmt(report.profile.memFraction * 100, 1)
            << "% memory ops, ILP " << fmt(report.profile.avgIlp, 2) << "\n";
  TextTable table({"Candidate", "Score", "Weighted length", "LUTs"});
  for (const CandidateResult& c : report.candidates)
    if (c.feasible)
      table.addRow({c.name, fmt(c.score, 0), fmt(c.weightedLength, 0),
                    fmt(c.lutArea, 0)});
  table.print(std::cout);
  std::cout << "winner: " << report.best.name() << "\n";
  if (args.has("out")) {
    json::writeFile(args.get("out"), report.best.toJson());
    std::cout << "wrote " << args.get("out") << "\n";
  }
  return 0;
}

int cmdAnalyze(const Args& args) {
  const Composition comp = resolveComposition(args.get("comp", "mesh4"));
  Prepared p = prepareKernel(args);
  const Scheduler scheduler(comp);
  const ScheduleReport result =
      scheduler.schedule(ScheduleRequest(p.graph)).orThrow();

  std::cout << "== " << p.workload.name << " on " << comp.name() << " ==\n\n"
            << ganttChart(result.schedule, comp) << "\n";

  const ScheduleAnalysis a = analyzeSchedule(result.schedule, comp);
  TextTable util({"PE", "busy cycles", "utilization", "ops", "inserted"});
  for (const PEUtilization& pe : a.perPE)
    util.addRow({std::to_string(pe.pe), std::to_string(pe.busyCycles),
                 fmt(pe.utilization * 100, 1) + "%",
                 std::to_string(pe.opsIssued),
                 std::to_string(pe.copsIssued)});
  util.print(std::cout);
  std::cout << "peak parallelism " << a.peakParallelism << ", C-Box busy "
            << a.cboxBusyCycles << " cycles\n\n";

  TextTable mii({"Loop", "Depth", "Achieved II", "ResMII", "RecMII",
                 "Headroom"});
  for (const LoopMii& m : computeMiiBounds(p.graph, result.schedule, comp))
    mii.addRow({std::to_string(m.loop),
                std::to_string(p.graph.loopDepth(m.loop)),
                std::to_string(m.achievedInterval), fmt(m.resMii, 1),
                fmt(m.recMii, 1), fmt(m.headroom(), 2) + "x"});
  mii.print(std::cout);
  return 0;
}

const CommandSpec kCommands[] = {
    {"list", "list bundled kernels and compositions", {}, cmdList},
    {"describe", "print a composition's PE/interconnect report",
     {"comp"}, cmdDescribe},
    {"kir", "print the IR after every frontend-pipeline stage",
     {"kernel", "kernel-file", "local", "array", "unroll", "cse",
      "switch-strategy", "seed"},
     cmdKir},
    {"schedule", "map a kernel onto a composition and report the schedule",
     {"comp", "kernel", "kernel-file", "local", "array", "unroll", "cse",
      "max-contexts", "trace", "trace-capacity", "gantt", "dump", "contexts",
      "memfiles", "verilog", "dot", "cache", "cache-bytes"},
     cmdSchedule},
    {"explain",
     "print the scheduler's decision log (works on unmappable kernels)",
     {"comp", "kernel", "kernel-file", "local", "array", "unroll", "cse",
      "max-contexts", "trace", "trace-capacity"},
     cmdExplain},
    {"simulate", "schedule, run on the cycle simulator, verify vs golden",
     {"comp", "kernel", "kernel-file", "local", "array", "unroll", "cse",
      "baseline", "counters", "json", "csv"},
     cmdSimulate},
    {"stats", "static schedule-quality report (no simulation)",
     {"comp", "kernel", "kernel-file", "local", "array", "unroll", "cse",
      "max-contexts", "json", "csv"},
     cmdStats},
    {"analyze", "utilization, Gantt chart and loop-II bounds of a schedule",
     {"comp", "kernel", "kernel-file", "local", "array", "unroll", "cse"},
     cmdAnalyze},
    {"synthesize", "rank candidate compositions for a kernel domain",
     {"kernels", "area-weight", "threads", "out"}, cmdSynthesize},
    {"sweep", "schedule every (composition x kernel) pair in parallel",
     {"comps", "kernels", "kernel-dir", "unroll", "threads", "metrics",
      "max-contexts", "trace", "trace-capacity", "stable", "cache",
      "cache-bytes", "seed"},
     cmdSweep},
    {"explore",
     "design-space auto-tuner: Pareto front over area vs. schedule quality",
     {"space", "kernels", "kernel-dir", "unroll", "strategy", "seed",
      "budget", "population", "threads", "stable", "cache", "cache-bytes",
      "out", "metrics"},
     cmdExplore},
    {"serve", "concurrent compile server: JSONL requests in, artifacts out",
     {"cache", "cache-bytes", "threads", "max-queue", "queue-bound",
      "max-clients", "artifact", "socket", "tcp", "max-connections",
      "connect", "metrics", "access-log", "trace-sample", "trace-dir"},
     cmdServe},
};

int printHelp(const CommandSpec& cmd) {
  std::cout << "usage: cgra-tool " << cmd.name << " [flags]\n"
            << cmd.summary << "\n";
  if (cmd.flags.empty()) return 0;
  std::cout << "\nflags:\n";
  for (const char* name : cmd.flags) {
    const FlagSpec* f = findFlag(name);
    std::string left = "  --" + std::string(f->name);
    if (f->takesValue) left += " " + std::string(f->valueName);
    if (left.size() < 26) left.resize(26, ' ');
    std::cout << left << " " << f->help
              << (f->repeatable ? " (repeatable)" : "") << "\n";
  }
  return 0;
}

int usage() {
  std::cout << "usage: cgra-tool <command> [--flags]\n\ncommands:\n";
  for (const CommandSpec& cmd : kCommands) {
    std::string left = "  " + std::string(cmd.name);
    if (left.size() < 14) left.resize(14, ' ');
    std::cout << left << " " << cmd.summary << "\n";
  }
  std::cout << "\n`cgra-tool <command> --help` lists the command's flags.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string name = argv[1];
  const CommandSpec* cmd = nullptr;
  for (const CommandSpec& c : kCommands)
    if (name == c.name) cmd = &c;
  if (cmd == nullptr) return usage();
  try {
    const Args args(argc, argv, *cmd);
    if (args.has("help")) return printHelp(*cmd);
    return cmd->run(args);
  } catch (const std::exception& e) {
    std::cerr << "cgra-tool: " << e.what() << "\n";
    return 1;
  }
}
